"""The event-driven simulation world.

A :class:`World` owns the virtual clock and an event engine from
:mod:`repro.kernel`.  Everything in the reproduction — supervisor
scheduling, packet delivery, semaphore timeouts, agent halt broadcasts —
is expressed as events scheduled here.  The world itself is a thin
facade: all queue mechanics (the timing wheel, window indexes, lazy
cancellation, tombstone compaction) live in the kernel package, and the
world adds the clock, the seeded RNG, the instrumentation bus, and the
run loop.

Determinism rules
-----------------
* Events with equal timestamps run in the order they were scheduled (a
  monotonically increasing sequence number breaks ties) — the total
  order on ``(time, seq)`` is the kernel contract, identical across
  every registered engine.
* All randomness flows through ``world.rng``, a seeded ``random.Random``.
* Handlers may advance the clock cooperatively with :meth:`World.advance`,
  but never past the next queued event; this is how node CPU slices
  interleave with packet deliveries at exact microsecond granularity.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Union

import random

from repro.kernel.core import EventHandle, SimulationError, make_core
from repro.obs.bus import Bus
from repro.obs.metrics import Metrics, install_default_metrics
from repro.sim.units import FOREVER

__all__ = ["EventHandle", "SimulationError", "World"]


class World:
    """Global virtual clock plus event engine.

    Multi-node parallelism: nodes consume CPU time on *local* cursors that
    run ahead of ``now`` inside an execution window computed by
    :meth:`window_for` — a node may run up to its own next event (timer,
    packet delivery, tick), any global event, or any other node's next
    event plus the network lookahead (nothing can cross nodes faster than
    one Basic Block).  This is conservative parallel discrete-event
    simulation; it keeps two busy CPUs advancing over the same virtual
    interval instead of serializing them.

    Parameters
    ----------
    seed:
        Seed for the world's random number generator.  Two worlds created
        with the same seed and driven by the same code produce identical
        event traces.
    kernel:
        The event engine: a registry name (``"wheel"``, the default, or
        ``"heap"``, the pre-refactor baseline), or an already-built core
        object.  Overridable with the ``REPRO_KERNEL`` environment
        variable; every engine produces the identical event order, so
        this is a performance knob, never a semantics knob.
    """

    def __init__(self, seed: int = 0, kernel: Union[str, Any, None] = None):
        self.now: int = 0
        self.rng = random.Random(seed)
        #: The instrumentation bus: every layer emits typed events here
        #: (see :mod:`repro.obs`).  Event types with no subscribers cost
        #: one dict lookup per emit.
        self.bus = Bus()
        #: The world's metric registry; the shipped counters subscribe to
        #: the bus at birth and back the layers' public counter properties.
        self.metrics = Metrics()
        install_default_metrics(self.bus, self.metrics)
        if kernel is None:
            kernel = os.environ.get("REPRO_KERNEL", "wheel")
        #: The event engine (see :mod:`repro.kernel`).
        self.kernel = make_core(kernel) if isinstance(kernel, str) else kernel
        self._running = False
        self._stopped = False
        self._closed = False
        #: While run(until=...) is active, cooperative advancement and
        #: peek_next_time() are capped here so no handler runs past it.
        self._boundary: Optional[int] = None
        #: High-water mark of node-local CPU cursors, so the clock lands on
        #: the true end of computation when the event queue drains.
        self._progress = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: int,
        fn: Callable[..., Any],
        *args: Any,
        node: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args, node=node)

    def schedule_at(
        self,
        time: int,
        fn: Callable[..., Any],
        *args: Any,
        node: Optional[int] = None,
        survives_crash: bool = False,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        return self.kernel.schedule_at(
            time, fn, args, node=node, survives_crash=survives_crash
        )

    def cancel_node_events(self, node: int) -> int:
        """Cancel every pending event tagged with ``node``.

        Used by :meth:`repro.mayflower.node.Node.crash`: a fail-stopped
        machine must not have timers or scheduler ticks fire after the
        crash.  Events marked ``survives_crash`` (in-flight deliveries,
        which live on the wire) are kept — they still bound execution
        windows and resolve at delivery time.  Returns the number of
        live events cancelled; see
        :meth:`repro.kernel.core.EventCore.cancel_node_events` for the
        lazy-compaction contract.
        """
        return self.kernel.cancel_node_events(node)

    # ------------------------------------------------------------------
    # Cooperative clock advancement (used by node CPU slices)
    # ------------------------------------------------------------------

    def peek_next_time(self) -> int:
        """Time of the next pending event, or FOREVER if the queue is empty.

        Nothing new can be scheduled earlier than this without the clock
        first reaching it, so a handler may safely consume CPU time up to
        (but not past) this boundary.
        """
        return self.kernel.peek_next_time(self._boundary)

    def window_for(self, node: int, lookahead: int) -> int:
        """How far node ``node`` may run its CPU ahead of ``now``.

        Bounded by the node's own next event, any global event, any other
        node's next event plus ``lookahead`` (the minimum cross-node
        latency), and the active run(until=...) boundary.  Memoized in
        the kernel until the queue changes — this is the supervisor's
        per-action hot path, and at 512 nodes a slice re-derives the same
        window hundreds of times between queue mutations.
        """
        return self.kernel.window_for(node, lookahead, self._boundary)

    def advance(self, dt: int) -> None:
        """Advance the clock by ``dt`` from inside an event handler.

        The caller must have checked :meth:`peek_next_time`; advancing past a
        pending event would reorder history and raises ``SimulationError``.
        """
        if dt < 0:
            raise SimulationError(f"cannot advance backwards (dt={dt})")
        target = self.now + dt
        if target > self.peek_next_time():
            raise SimulationError(
                f"advance({dt}) would pass pending event at "
                f"t={self.peek_next_time()} (now={self.now})"
            )
        self.now = target

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def note_progress(self, time: int) -> None:
        """Record how far a node's local CPU cursor has run."""
        if time > self._progress:
            self._progress = time

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        handle = self.kernel.pop_next()
        if handle is None:
            return False
        self.now = handle.time
        fn, args = handle.fn, handle.args
        handle.cancel()  # release references; the event is consumed
        self.events_processed += 1
        fn(*args)
        return True

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the number of events
        processed by this call.

        ``until`` is exclusive: events scheduled at exactly ``until`` are
        left queued, and the clock is left at ``until``.  While the run is
        active, cooperative advancement is capped at ``until`` too, so no
        handler can carry the clock past it.
        """
        if self._running:
            raise SimulationError("World.run() is not reentrant")
        if self._closed:
            raise SimulationError("world is closed")
        self._running = True
        self._stopped = False
        self._boundary = until
        processed = 0
        try:
            while not self._stopped:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_next_time()
                if next_time == FOREVER:
                    self.now = max(self.now, min(self._progress, until)
                                   if until is not None else self._progress)
                    break
                if until is not None and next_time >= until:
                    self.now = max(self.now, until)
                    break
                if not self.step():
                    break
                processed += 1
        finally:
            self._boundary = None
            self._running = False
        return processed

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` microseconds of virtual time."""
        return self.run(until=self.now + duration)

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self.kernel.live

    def close(self) -> None:
        """Tear the world down cheaply (for high-churn worker pools).

        Cancels every queued event (dropping the closures and their
        captured node/runtime objects), empties the scheduling indexes,
        and clears the bus subscriptions.  The world is unusable
        afterwards; campaign workers call this between grid cells so
        each finished world is freed by refcounting alone instead of
        lingering until a full cycle collection.
        """
        if self._running:
            raise SimulationError("cannot close a running world")
        self.kernel.clear()
        self.bus.clear()
        self._stopped = True
        self._closed = True

    def __repr__(self) -> str:
        return f"<World now={self.now} pending={self.pending_count()}>"
