"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for the whole reproduction.  It
provides a single global virtual clock measured in integer microseconds, an
event queue with stable FIFO ordering among simultaneous events, and a
:class:`~repro.sim.world.World` object that drives the simulation.

The kernel supports *cooperative time slicing*: an event handler (typically a
node executing VM instructions) may advance the clock incrementally with
:meth:`World.advance` as long as it does not run past the next queued event.
This yields exact instruction-level interleaving between nodes without paying
for one heap operation per instruction.
"""

from repro.sim.world import EventHandle, SimulationError, World
from repro.sim.units import MS, SEC, US, format_time

__all__ = [
    "EventHandle",
    "SimulationError",
    "World",
    "US",
    "MS",
    "SEC",
    "format_time",
]
