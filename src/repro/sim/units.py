"""Time units for the simulation.

All simulated time is kept as integer microseconds.  These constants make
call sites read naturally: ``world.schedule(8 * MS, fn)``.
"""

US = 1
MS = 1_000
SEC = 1_000_000

#: A time that compares greater than any reachable simulation time.
FOREVER = 1 << 62


def format_time(us: int) -> str:
    """Render a microsecond timestamp as a human-readable string.

    >>> format_time(8_000)
    '8.000ms'
    >>> format_time(2_500_000)
    '2.500s'
    >>> format_time(400)
    '400us'
    """
    if us >= SEC:
        return f"{us / SEC:.3f}s"
    if us >= MS:
        return f"{us / MS:.3f}ms"
    return f"{us}us"
