"""Cluster-wide service name registry.

Stands in for the Cambridge Distributed Computing System's name server:
maps service names to node addresses and holds the typed interface
(signature) of each exported procedure, giving the fully type-checked RPC
of paper §2.
"""

from __future__ import annotations

from typing import Optional

from repro.rpc.marshal import Signature


class ServiceRegistry:
    """Service name -> node address, plus per-procedure signatures."""

    def __init__(self):
        self._services: dict[str, int] = {}
        self._signatures: dict[tuple[str, str], Signature] = {}

    def register(
        self,
        service: str,
        node_id: int,
        signatures: Optional[dict[str, Signature]] = None,
    ) -> None:
        self._services[service] = node_id
        if signatures:
            for proc, signature in signatures.items():
                self._signatures[(service, proc)] = signature

    def unregister(self, service: str) -> None:
        self._services.pop(service, None)

    def lookup(self, service: str) -> Optional[int]:
        return self._services.get(service)

    def signature(self, service: str, proc: str) -> Optional[Signature]:
        return self._signatures.get((service, proc))

    def services(self) -> list[str]:
        return sorted(self._services)

    def __repr__(self) -> str:
        return f"<ServiceRegistry {self._services}>"
