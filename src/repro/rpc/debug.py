"""RPC debugging artifacts: info blocks, call tables, the recent-call buffer.

These are the data structures paper §4.3 adds to the Mayflower RPC
implementation so the debugger can report on in-progress and recently
completed calls:

* **info blocks** — "an extra variable ... in a known position in the stack
  frame ... points to an information block containing the process
  identifier, the remote procedure name, the call identifier, and an
  enumeration giving the current state of the protocol";
* **call tables** — client side associates call identifiers with the client
  process issuing the call; server side associates the server process
  handling the call with the call identifier;
* **recent-call buffer** — "a ten-slot cyclic buffer describing the outcome
  of ten most recent RPCs.  The only information maintained is the call
  identifier and whether the call failed or succeeded."
"""

from __future__ import annotations

from typing import Any, Optional

# Protocol states for the info-block enumeration.
STATE_MARSHALLING = "marshalling"
STATE_CALL_SENT = "call_sent"
STATE_RETRANSMITTING = "retransmitting"
STATE_REPLY_RECEIVED = "reply_received"
STATE_COMPLETED = "completed"
STATE_FAILED = "failed"
STATE_SERVING = "serving"


def make_info_block(
    pid: int, remote_proc: str, call_id: int, protocol: str
) -> dict:
    """The info block placed in the RPC runtime stack frame."""
    return {
        "pid": pid,
        "remote_proc": remote_proc,
        "call_id": call_id,
        "protocol": protocol,
        "state": STATE_MARSHALLING,
        "retries": 0,
    }


class ClientCallRecord:
    """Client-side call-table entry for one in-progress call."""

    def __init__(
        self,
        call_id: int,
        process,
        service: str,
        proc: str,
        protocol: str,
        info_block: dict,
        started_at: int,
    ):
        self.call_id = call_id
        self.process = process
        self.service = service
        self.proc = proc
        self.protocol = protocol
        self.info_block = info_block
        self.started_at = started_at
        self.retransmit_timer = None
        self.completed = False
        self.outcome: Optional[str] = None  # 'ok' | failure reason

    def describe(self) -> dict:
        return {
            "call_id": self.call_id,
            "client_pid": self.process.pid if self.process else None,
            "service": self.service,
            "proc": self.proc,
            "protocol": self.protocol,
            "state": self.info_block["state"],
            "retries": self.info_block["retries"],
            "started_at": self.started_at,
        }


class ServerCallRecord:
    """Server-side call-table entry."""

    def __init__(
        self,
        call_id: int,
        client_node: int,
        client_pid: int,
        service: str,
        proc: str,
        protocol: str,
        received_at: int,
    ):
        self.call_id = call_id
        self.client_node = client_node
        self.client_pid = client_pid
        self.service = service
        self.proc = proc
        self.protocol = protocol
        self.received_at = received_at
        self.worker = None  # the server process handling the call
        self.reply_wire: Optional[Any] = None  # cached for dedup resend
        self.completed = False
        self.outcome: Optional[str] = None
        #: True when served by the halt-exempt dispatcher (agent services).
        self.exempt = False

    def describe(self) -> dict:
        return {
            "call_id": self.call_id,
            "client_node": self.client_node,
            "client_pid": self.client_pid,
            "service": self.service,
            "proc": self.proc,
            "protocol": self.protocol,
            "worker_pid": self.worker.pid if self.worker else None,
            "completed": self.completed,
            "outcome": self.outcome,
        }


class RecentCallBuffer:
    """The ten-slot cyclic buffer of recent RPC outcomes (paper §4.3)."""

    def __init__(self, slots: int = 10):
        self.slots = slots
        self._entries: list[tuple[int, bool]] = []

    def record(self, call_id: int, succeeded: bool) -> None:
        self._entries.append((call_id, succeeded))
        if len(self._entries) > self.slots:
            self._entries.pop(0)

    def entries(self) -> list[tuple[int, bool]]:
        """Oldest first; at most ``slots`` entries."""
        return list(self._entries)

    def lookup(self, call_id: int) -> Optional[bool]:
        for entry_id, succeeded in reversed(self._entries):
            if entry_id == call_id:
                return succeeded
        return None

    def __len__(self) -> int:
        return len(self._entries)
