"""Type-checked marshalling for RPC.

Paper §2: "The RPC mechanism is fully type-checked and permits arbitrarily
complex objects of user defined type to be transmitted between nodes."

Values cross nodes by value: records and arrays are rebuilt on the far
side, never aliased.  Signatures use the type grammar ``int | bool |
string | any | array[T] | <record name>``.
"""

from __future__ import annotations

from typing import Any

from repro.cvm.values import CluArray, CluRecord, CluRuntimeError, marshal_size


class MarshalError(CluRuntimeError):
    """A value failed the RPC interface type check."""


def marshal(value: Any):
    """Encode a value into the wire representation (plain data)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, CluArray):
        return ("arr", [marshal(item) for item in value.items])
    if isinstance(value, CluRecord):
        return (
            "rec",
            value.type_name,
            {name: marshal(item) for name, item in value.fields.items()},
        )
    raise MarshalError(f"value {value!r} is not transmissible")


def unmarshal(wire: Any):
    """Rebuild a value from the wire representation."""
    if wire is None or isinstance(wire, (bool, int, str)):
        return wire
    if isinstance(wire, tuple) and wire and wire[0] == "arr":
        return CluArray([unmarshal(item) for item in wire[1]])
    if isinstance(wire, tuple) and wire and wire[0] == "rec":
        return CluRecord(wire[1], {k: unmarshal(v) for k, v in wire[2].items()})
    raise MarshalError(f"bad wire value {wire!r}")


def wire_size(wire: Any) -> int:
    """Approximate size in bytes of a wire value (drives ring latency)."""
    return marshal_size(wire)


def check_type(value: Any, type_str: str) -> None:
    """Raise MarshalError unless ``value`` conforms to ``type_str``."""
    if type_str == "any":
        return
    if type_str == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise MarshalError(f"expected int, got {value!r}")
        return
    if type_str == "bool":
        if not isinstance(value, bool):
            raise MarshalError(f"expected bool, got {value!r}")
        return
    if type_str == "string":
        if not isinstance(value, str):
            raise MarshalError(f"expected string, got {value!r}")
        return
    if type_str == "null":
        if value is not None:
            raise MarshalError(f"expected nil, got {value!r}")
        return
    if type_str.startswith("array[") and type_str.endswith("]"):
        if not isinstance(value, CluArray):
            raise MarshalError(f"expected {type_str}, got {value!r}")
        inner = type_str[len("array["):-1]
        for item in value.items:
            check_type(item, inner)
        return
    if type_str == "array":
        if not isinstance(value, CluArray):
            raise MarshalError(f"expected array, got {value!r}")
        return
    # Anything else names a record type.
    if not isinstance(value, CluRecord) or value.type_name != type_str:
        raise MarshalError(f"expected record {type_str!r}, got {value!r}")


class Signature:
    """The typed interface of one remote procedure."""

    def __init__(self, arg_types: list[str], return_type: str = "any"):
        self.arg_types = arg_types
        self.return_type = return_type

    def check_args(self, args: list) -> None:
        if len(args) != len(self.arg_types):
            raise MarshalError(
                f"expected {len(self.arg_types)} args, got {len(args)}"
            )
        for value, type_str in zip(args, self.arg_types):
            check_type(value, type_str)

    def check_result(self, value: Any) -> None:
        check_type(value, self.return_type)

    def __repr__(self) -> str:
        return f"Signature({self.arg_types} -> {self.return_type})"
