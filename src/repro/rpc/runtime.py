"""The Mayflower RPC runtime (paper §2, §4).

Two protocols over the ring:

* **exactly-once** — reliable in the absence of node failures: the client
  retransmits until a reply arrives; the server deduplicates by call id
  and caches replies for retransmitted calls;
* **maybe** — one call packet, one timeout, no retries: "the faster, less
  reliable maybe protocol allows the programmer to handle both transient
  errors and failures with retry strategies appropriate to the application
  at hand".

Debug instrumentation (paper §4.3) is integral, not a special mode:

* client/server call tables (call id <-> process) — maintained anyway by
  the protocol;
* info blocks in the RPC runtime stack frames of VM callers and workers;
* the ten-slot recent-call outcome buffer;
* a +400 µs per-call cost when ``debug_support`` is on (the measured
  overhead; toggleable only so experiment E1 can measure it).

Timing model: each call crosses four processing steps (client send, server
receive, server send, client receive) of ``rpc_processing_cost / 2`` each,
plus two Basic Block transits — about 16 ms for a null call, so the 400 µs
instrumentation is the paper's 2.5 %.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.cvm.values import RpcFailure
from repro.mayflower.syscalls import Call, Cpu, Receive
from repro.obs import events as ev
from repro.rpc.debug import (
    STATE_CALL_SENT,
    STATE_COMPLETED,
    STATE_FAILED,
    STATE_REPLY_RECEIVED,
    STATE_RETRANSMITTING,
    ClientCallRecord,
    RecentCallBuffer,
    ServerCallRecord,
    make_info_block,
)
from repro.rpc.marshal import MarshalError, Signature, marshal, unmarshal, wire_size
from repro.rpc.registry import ServiceRegistry
from repro.rpc.timers import TimerSet

if TYPE_CHECKING:
    from repro.cvm.image import NodeImage
    from repro.cvm.interp import VmExecutor
    from repro.mayflower.node import Node
    from repro.mayflower.process import Process

RPC_PORT = "rpc"


class ServerCallContext:
    """Passed to native service handlers: who is calling, from where.

    ``client_node`` is the caller's network address — what a server needs
    to invoke ``get_debuggee_status`` at the client (paper §6.1).
    """

    def __init__(self, node: "Node", call_id: int, client_node: int, client_pid: int):
        self.node = node
        self.call_id = call_id
        self.client_node = client_node
        self.client_pid = client_pid


class _ServiceImpl:
    """One locally exported service."""

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind  # 'vm' | 'native'
        self.vm_image: Optional["NodeImage"] = None
        self.vm_procs: dict[str, str] = {}
        self.native_procs: dict[str, Callable] = {}
        self.signatures: dict[str, Signature] = {}
        #: Whether this service was published in the global registry
        #: (remembered so a node reboot re-installs it identically).
        self.registered = True
        self.halt_exempt = False


class RpcRuntime:
    """Per-node RPC runtime."""

    def __init__(self, node: "Node", registry: ServiceRegistry):
        self.node = node
        self.world = node.world
        self.params = node.params
        self.registry = registry
        self.bus = node.world.bus
        metrics = node.world.metrics
        self._started = metrics.labeled("rpc.calls_started")
        self._completed = metrics.labeled("rpc.calls_completed")
        self._failed = metrics.labeled("rpc.calls_failed")
        #: Paper §4.3 instrumentation: on by default (it ships in the
        #: normal build); experiment E1 turns it off to measure the cost.
        #: Toggling it subscribes/unsubscribes the recent-call buffer on
        #: the bus (see the ``debug_support`` property below).
        self._debug_support = False
        #: The rejected §4.2 packet-monitor design; experiment E2 enables
        #: it to show the ~2x slow-down.
        self.monitor = None
        self.timers = TimerSet(
            self.world, node.supervisor.current_time, node.node_id
        )
        #: Timers for halt-exempt services (the agent's debug procedures
        #: must stay servable while the node is halted, paper §6.1); these
        #: are never frozen.
        self.exempt_timers = TimerSet(
            self.world, node.supervisor.current_time, node.node_id
        )
        #: Services whose dispatch and workers keep running during a halt.
        self.exempt_services: set[str] = set()
        self.client_table: dict[int, ClientCallRecord] = {}
        self.client_history: list[ClientCallRecord] = []
        self.server_table: dict[int, ServerCallRecord] = {}
        self.recent_calls = RecentCallBuffer(self.params.recent_call_slots)
        self._next_seq = 0
        self._services: dict[str, _ServiceImpl] = {}
        self._dispatch_queue = node.queue("rpc.dispatch")
        self._dispatcher: Optional["Process"] = None
        self._exempt_queue = node.queue("rpc.dispatch.exempt")
        self._exempt_dispatcher: Optional["Process"] = None
        #: When this runtime booted (node time).  Retransmits of calls
        #: first sent before this moment are *stale*: the pre-reboot
        #: runtime may already have executed them, so re-executing here
        #: would break exactly-once.  They are rejected instead.
        self.boot_time = node.supervisor.current_time()
        self._stale = metrics.counter("rpc.stale_rejected")
        node.rpc = self
        node.station.register_port(RPC_PORT, self._on_packet)
        self.debug_support = True

    # ------------------------------------------------------------------
    # Counters (properties over the obs metric series)
    # ------------------------------------------------------------------

    @property
    def calls_started(self) -> int:
        return self._started.get(self.node.node_id)

    @property
    def calls_completed(self) -> int:
        return self._completed.get(self.node.node_id)

    @property
    def calls_failed(self) -> int:
        return self._failed.get(self.node.node_id)

    @property
    def stale_rejected(self) -> int:
        """World-wide count of pre-reboot retransmits refused (the
        series is a plain counter shared by all runtimes)."""
        return self._stale.value

    # ------------------------------------------------------------------
    # Debug support toggle (paper §4.3)
    # ------------------------------------------------------------------

    @property
    def debug_support(self) -> bool:
        return self._debug_support

    @debug_support.setter
    def debug_support(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self._debug_support:
            return
        self._debug_support = enabled
        if enabled:
            self.bus.subscribe(ev.RpcCallCompleted, self._record_outcome)
            self.bus.subscribe(ev.RpcCallFailed, self._record_outcome)
        else:
            self.bus.unsubscribe(ev.RpcCallCompleted, self._record_outcome)
            self.bus.unsubscribe(ev.RpcCallFailed, self._record_outcome)

    def _record_outcome(self, event) -> None:
        """Feed the cyclic recent-call buffer from the bus (paper §4.3)."""
        if event.node == self.node.node_id:
            self.recent_calls.record(
                event.call_id, not isinstance(event, ev.RpcCallFailed)
            )

    # ------------------------------------------------------------------
    # Cost model helpers
    # ------------------------------------------------------------------

    def _step_cost(self) -> int:
        """Processing delay for one of the four protocol steps."""
        cost = self.params.rpc_processing_cost // 2
        if self.debug_support:
            cost += self.params.rpc_debug_overhead // 4
        if self.monitor is not None:
            cost += self.params.rpc_monitor_packet_cost // 2
        return cost

    # ------------------------------------------------------------------
    # Exporting services
    # ------------------------------------------------------------------

    def export_vm(
        self,
        service: str,
        image: "NodeImage",
        procs: dict[str, str],
        signatures: Optional[dict[str, Signature]] = None,
    ) -> None:
        """Export CCLU procedures of ``image`` as a remote service."""
        impl = _ServiceImpl(service, "vm")
        impl.vm_image = image
        impl.vm_procs = dict(procs)
        impl.signatures = dict(signatures or {})
        self._install(service, impl)

    def export_native(
        self,
        service: str,
        procs: dict[str, Callable],
        signatures: Optional[dict[str, Signature]] = None,
        register: bool = True,
        halt_exempt: bool = False,
    ) -> None:
        """Export native Python handlers as a remote service.

        A handler is called as ``handler(ctx, *args)`` in worker-process
        context; it may return a value directly or a generator of
        Mayflower syscalls whose return value becomes the reply.

        ``halt_exempt`` marks a service that must keep answering while the
        node is halted at a breakpoint (the agent's debug procedures).
        """
        impl = _ServiceImpl(service, "native")
        impl.native_procs = dict(procs)
        impl.signatures = dict(signatures or {})
        if halt_exempt:
            self.exempt_services.add(service)
        self._install(service, impl, register=register, halt_exempt=halt_exempt)

    def _install(
        self,
        service: str,
        impl: _ServiceImpl,
        register: bool = True,
        halt_exempt: bool = False,
    ) -> None:
        self._services[service] = impl
        impl.registered = register
        impl.halt_exempt = halt_exempt
        if register:
            self.registry.register(service, self.node.node_id, impl.signatures)
        if halt_exempt:
            if self._exempt_dispatcher is None:
                self._exempt_dispatcher = self.node.spawn(
                    self._dispatcher_body(self._exempt_queue, exempt=True),
                    name="rpc.dispatcher.exempt",
                    priority=self.params.agent_priority,
                    halt_exempt=True,
                )
        elif self._dispatcher is None:
            self._dispatcher = self.node.spawn(
                self._dispatcher_body(self._dispatch_queue, exempt=False),
                name="rpc.dispatcher",
            )

    def reinstall(self, impl: _ServiceImpl) -> None:
        """Carry a service over from a pre-reboot runtime.

        Used by the cluster's reboot hook: the implementation object
        survives (procedure tables, signatures), but dispatchers, queues,
        and registry rows belong to this fresh runtime.  VM-backed
        services get their image's RPC hook repointed here.
        """
        if impl.halt_exempt:
            self.exempt_services.add(impl.name)
        if impl.vm_image is not None:
            impl.vm_image.rpc_hook = self.vm_rcall
        self._install(
            impl.name, impl, register=impl.registered,
            halt_exempt=impl.halt_exempt,
        )

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def vm_rcall(
        self,
        executor: "VmExecutor",
        process: "Process",
        service: str,
        proc: str,
        args: list,
        protocol: str,
    ) -> None:
        """The image's RCALL hook (wired by the cluster builder)."""
        self.start_call(
            process, service, proc, args, protocol, executor=executor
        )

    def start_call(
        self,
        process: "Process",
        service: str,
        proc: str,
        args: list,
        protocol: str = "once",
        dst_node: Optional[int] = None,
        executor: Optional["VmExecutor"] = None,
    ) -> int:
        """Begin an RPC from process context; blocks the caller.

        The caller is later unblocked with the unmarshalled result value or
        an :class:`RpcFailure`.  Returns the call id.
        """
        if protocol not in ("once", "maybe"):
            raise MarshalError(f"unknown RPC protocol {protocol!r}")
        self._next_seq += 1
        call_id = (self.node.node_id << 20) | self._next_seq

        info = make_info_block(process.pid, f"{service}.{proc}", call_id, protocol)
        record = ClientCallRecord(
            call_id, process, service, proc, protocol, info,
            self.node.supervisor.current_time(),
        )
        self.client_table[call_id] = record
        self.bus.emit(
            ev.RpcCallStarted,
            time=record.started_at,
            node=self.node.node_id,
            call_id=call_id,
            service=service,
            proc=proc,
            protocol=protocol,
        )

        supervisor = self.node.supervisor
        if executor is not None:
            executor.begin_rpc(info)
        supervisor.block(
            process, f"rpc:{service}.{proc}#{call_id}", None, lambda p: None
        )

        # Resolve and type-check before any network activity.
        target = dst_node if dst_node is not None else self.registry.lookup(service)
        if target is None:
            self._complete(record, RpcFailure(f"unknown service {service!r}", call_id))
            return call_id
        signature = self.registry.signature(service, proc)
        try:
            if signature is not None:
                signature.check_args(args)
            args_wire = [marshal(value) for value in args]
        except MarshalError as exc:
            self._complete(record, RpcFailure(f"marshal error: {exc}", call_id))
            return call_id

        payload = {
            "type": "call",
            "call_id": call_id,
            "service": service,
            "proc": proc,
            "protocol": protocol,
            "args": args_wire,
            "client_node": self.node.node_id,
            "client_pid": process.pid,
            # Reboot-safe dedup: servers compare the first-send time with
            # their own boot time to recognize pre-reboot retransmits.
            "first_sent_at": record.started_at,
            "retry": 0,
        }
        # Client send-side processing, then transmission.
        self.timers.start(self._step_cost(), self._send_call, record, target, payload)
        return call_id

    def _send_call(self, record: ClientCallRecord, target: int, payload: dict) -> None:
        if record.completed:
            return
        record.info_block["state"] = STATE_CALL_SENT
        self.node.station.send(
            target,
            RPC_PORT,
            payload,
            size_bytes=64 + wire_size(payload["args"]),
            kind="rpc_call",
        )
        if record.protocol == "once":
            record.retransmit_timer = self.timers.start(
                self.params.rpc_retransmit_interval,
                self._retransmit,
                record,
                target,
                payload,
            )
        else:
            record.retransmit_timer = self.timers.start(
                self.params.maybe_timeout, self._maybe_timeout, record
            )

    def _retransmit(self, record: ClientCallRecord, target: int, payload: dict) -> None:
        if record.completed:
            return
        if record.info_block["retries"] >= self.params.rpc_max_retransmits:
            self._complete(
                record,
                RpcFailure(
                    f"node failure: no response from {record.service!r} after "
                    f"{self.params.rpc_max_retransmits} retransmissions",
                    record.call_id,
                ),
            )
            return
        record.info_block["retries"] += 1
        record.info_block["state"] = STATE_RETRANSMITTING
        payload["retry"] = record.info_block["retries"]
        self.bus.emit(
            ev.RpcCallRetried,
            time=self.node.supervisor.current_time(),
            node=self.node.node_id,
            call_id=record.call_id,
            service=record.service,
            proc=record.proc,
            retries=record.info_block["retries"],
        )
        self.node.station.send(
            target,
            RPC_PORT,
            payload,
            size_bytes=64 + wire_size(payload["args"]),
            kind="rpc_call",
        )
        record.retransmit_timer = self.timers.start(
            self.params.rpc_retransmit_interval,
            self._retransmit,
            record,
            target,
            payload,
        )

    def _maybe_timeout(self, record: ClientCallRecord) -> None:
        if record.completed:
            return
        self._complete(
            record,
            RpcFailure("maybe call timed out (call or reply packet lost)",
                       record.call_id),
        )

    def _complete(self, record: ClientCallRecord, value: Any) -> None:
        if record.completed:
            return
        record.completed = True
        if record.retransmit_timer is not None:
            record.retransmit_timer.cancel()
            record.retransmit_timer = None
        failed = isinstance(value, RpcFailure)
        record.outcome = value.reason if failed else "ok"
        record.info_block["state"] = STATE_FAILED if failed else STATE_COMPLETED
        now = self.node.supervisor.current_time()
        self.bus.emit(
            ev.RpcCallFailed if failed else ev.RpcCallCompleted,
            time=now,
            node=self.node.node_id,
            call_id=record.call_id,
            service=record.service,
            proc=record.proc,
            protocol=record.protocol,
            latency=max(0, now - record.started_at),
            **({"reason": value.reason} if failed else {}),
        )
        self.client_table.pop(record.call_id, None)
        self.client_history.append(record)
        if len(self.client_history) > 64:
            self.client_history.pop(0)
        self.node.supervisor.unblock(record.process, value)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------

    def _on_packet(self, packet) -> None:
        payload = packet.payload
        kind = payload.get("type")
        if kind == "call":
            self._on_call_packet(payload)
        elif kind == "reply":
            self._on_reply_packet(payload)

    def _on_call_packet(self, payload: dict) -> None:
        call_id = payload["call_id"]
        existing = self.server_table.get(call_id)
        if existing is not None:
            if existing.completed and existing.reply_wire is not None:
                # Retransmitted call for a completed exchange: resend the
                # cached reply (exactly-once dedup).
                self.timers.start(
                    self._step_cost(),
                    self._send_reply_wire,
                    existing.client_node,
                    existing.reply_wire,
                )
            return  # in progress: the original worker will reply
        if (
            payload.get("retry", 0) > 0
            and payload.get("first_sent_at", 0) < self.boot_time
        ):
            # A retransmit of a call first sent before this runtime
            # booted: the pre-reboot incarnation may have executed it
            # (and lost the dedup table in the crash), so executing it
            # again could double-run the procedure.  Refuse, telling the
            # client explicitly rather than letting it retry to death.
            self.bus.emit(
                ev.RpcStaleRejected,
                time=self.node.supervisor.current_time(),
                node=self.node.node_id,
                call_id=call_id,
                service=payload["service"],
                proc=payload["proc"],
            )
            self.timers.start(
                self._step_cost(),
                self._send_reply_wire,
                payload["client_node"],
                {
                    "type": "reply",
                    "call_id": call_id,
                    "status": "error",
                    "reason": "stale retransmit rejected: server rebooted "
                              "since the call began",
                },
            )
            return
        record = ServerCallRecord(
            call_id,
            payload["client_node"],
            payload["client_pid"],
            payload["service"],
            payload["proc"],
            payload["protocol"],
            self.node.supervisor.current_time(),
        )
        self.server_table[call_id] = record
        self._evict_server_records()
        if payload["service"] in self.exempt_services:
            self._exempt_queue.push((payload, record))
        else:
            self._dispatch_queue.push((payload, record))

    def _on_reply_packet(self, payload: dict) -> None:
        record = self.client_table.get(payload["call_id"])
        if record is None or record.completed:
            return
        record.info_block["state"] = STATE_REPLY_RECEIVED
        # Client receive-side processing before the caller resumes.
        self.timers.start(self._step_cost(), self._deliver_reply, record, payload)

    def _deliver_reply(self, record: ClientCallRecord, payload: dict) -> None:
        if record.completed:
            return
        if payload["status"] == "ok":
            value = unmarshal(payload["value"])
        else:
            value = RpcFailure(payload["reason"], record.call_id)
        self._complete(record, value)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def _dispatcher_body(self, queue, exempt: bool) -> Generator:
        while True:
            got = yield Receive(queue)
            if got is True:
                item = queue.pop()
            elif got is None or got is False:
                continue
            else:
                item = got
            payload, record = item
            # Server receive-side processing.
            yield Cpu(self._step_cost())
            self._spawn_worker(payload, record, exempt)

    def _spawn_worker(
        self, payload: dict, record: ServerCallRecord, exempt: bool = False
    ) -> None:
        record.exempt = exempt
        service = self._services.get(payload["service"])
        if service is None:
            self._finish_server_call(record, RpcFailure("no such service"))
            return
        proc = payload["proc"]
        signature = service.signatures.get(proc)
        try:
            args = [unmarshal(wire) for wire in payload["args"]]
            if signature is not None:
                signature.check_args(args)
        except MarshalError as exc:
            self._finish_server_call(record, RpcFailure(f"bad arguments: {exc}"))
            return

        ctx = ServerCallContext(
            self.node, record.call_id, record.client_node, record.client_pid
        )
        if service.kind == "vm":
            func_name = service.vm_procs.get(proc)
            if func_name is None:
                self._finish_server_call(record, RpcFailure(f"no such proc {proc!r}"))
                return
            from repro.cvm.interp import VmExecutor

            executor = VmExecutor(service.vm_image, func_name, args)
            executor.server_info_block = {
                "call_id": record.call_id,
                "remote_proc": f"{record.service}.{proc}",
                "client_node": record.client_node,
                "client_pid": record.client_pid,
                "state": "serving",
            }
            worker = self.node.spawn(executor, name=f"rpcw.{proc}")
        else:
            handler = service.native_procs.get(proc)
            if handler is None:
                self._finish_server_call(record, RpcFailure(f"no such proc {proc!r}"))
                return
            worker = self.node.spawn(
                self._native_worker_body(handler, ctx, args),
                name=f"rpcw.{proc}",
                priority=self.params.agent_priority if exempt else 0,
                halt_exempt=exempt,
            )
        record.worker = worker
        worker.on_exit.append(lambda process: self._worker_done(record, process))

    @staticmethod
    def _native_worker_body(handler: Callable, ctx: ServerCallContext, args: list):
        yield Cpu(20)
        result = handler(ctx, *args)
        if inspect.isgenerator(result):
            result = yield from result
        return result

    def _worker_done(self, record: ServerCallRecord, process: "Process") -> None:
        if process.failure is not None:
            self._finish_server_call(
                record, RpcFailure(f"remote execution failed: {process.failure}")
            )
        else:
            self._finish_server_call(record, process.result)

    def _finish_server_call(self, record: ServerCallRecord, result: Any) -> None:
        record.completed = True
        failed = isinstance(result, RpcFailure)
        record.outcome = result.reason if failed else "ok"
        if failed:
            reply = {
                "type": "reply",
                "call_id": record.call_id,
                "status": "error",
                "reason": result.reason,
            }
        else:
            try:
                reply = {
                    "type": "reply",
                    "call_id": record.call_id,
                    "status": "ok",
                    "value": marshal(result),
                }
            except MarshalError as exc:
                reply = {
                    "type": "reply",
                    "call_id": record.call_id,
                    "status": "error",
                    "reason": f"unmarshallable result: {exc}",
                }
        if record.protocol == "once":
            record.reply_wire = reply  # cached for dedup resends
        # Server send-side processing, then transmission.
        timers = self.exempt_timers if getattr(record, "exempt", False) else self.timers
        timers.start(
            self._step_cost(), self._send_reply_wire, record.client_node, reply
        )

    def _send_reply_wire(self, client_node: int, reply: dict) -> None:
        self.node.station.send(
            client_node,
            RPC_PORT,
            reply,
            size_bytes=64 + wire_size(reply.get("value")),
            kind="rpc_reply",
        )

    def _evict_server_records(self) -> None:
        if len(self.server_table) <= 256:
            return
        completed = [r for r in self.server_table.values() if r.completed]
        completed.sort(key=lambda r: r.received_at)
        for record in completed[: len(self.server_table) - 256]:
            self.server_table.pop(record.call_id, None)

    # ------------------------------------------------------------------
    # Agent-facing debug API (paper §4.3)
    # ------------------------------------------------------------------

    def inprogress_calls(self) -> list[dict]:
        return [record.describe() for record in self.client_table.values()]

    def serving_calls(self) -> list[dict]:
        return [
            record.describe()
            for record in self.server_table.values()
            if not record.completed
        ]

    def recent_outcomes(self) -> list[tuple[int, bool]]:
        return self.recent_calls.entries()

    def server_record(self, call_id: int) -> Optional[ServerCallRecord]:
        return self.server_table.get(call_id)

    def freeze(self) -> None:
        """Suspend protocol timers while the node is halted (paper §5.2)."""
        self.timers.freeze()

    def thaw(self) -> None:
        self.timers.thaw()


def remote_call(
    runtime: RpcRuntime,
    service: str,
    proc: str,
    args: Optional[list] = None,
    protocol: str = "once",
    dst_node: Optional[int] = None,
) -> Generator:
    """Issue an RPC from a native process::

        result = yield from remote_call(node.rpc, "calc", "add", [1, 2])
    """

    def _start(_supervisor, process):
        runtime.start_call(
            process,
            service,
            proc,
            list(args or []),
            protocol,
            dst_node=dst_node,
        )
        return None

    result = yield Call(_start, label=f"rpc:{service}.{proc}")
    return result
