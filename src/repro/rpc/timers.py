"""Freezable timer sets for protocol machinery.

When Pilgrim halts a node, *process* timeouts are frozen by the supervisor;
the RPC runtime's own timers (retransmissions, maybe-timeouts) must freeze
with them or a breakpoint would turn live calls into spurious failures.
The agent freezes the node's :class:`TimerSet` alongside its processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.obs import events as ev

if TYPE_CHECKING:
    from repro.sim.world import World


class TimerHandle:
    """A cancellable, freezable timer."""

    __slots__ = ("timer_set", "callback", "args", "event", "frozen_remaining", "dead")

    def __init__(self, timer_set: "TimerSet", callback: Callable, args: tuple):
        self.timer_set = timer_set
        self.callback = callback
        self.args = args
        self.event = None
        self.frozen_remaining: Optional[int] = None
        self.dead = False

    def cancel(self) -> None:
        if self.event is not None:
            self.event.cancel()
            self.event = None
        self.dead = True
        self.timer_set.discard(self)


class TimerSet:
    """A group of timers that freeze and thaw together.

    ``time_source``/``node`` integrate with the parallel simulation: timers
    started from a process running ahead on its node's local cursor are
    based at that cursor, and the events are tagged with the node.
    """

    def __init__(
        self,
        world: "World",
        time_source: Optional[Callable[[], int]] = None,
        node: Optional[int] = None,
    ):
        self.world = world
        self.time_source = time_source or (lambda: world.now)
        self.node = node
        self.timers: set[TimerHandle] = set()
        self.frozen = False

    def start(self, delay: int, callback: Callable, *args: Any) -> TimerHandle:
        handle = TimerHandle(self, callback, args)
        self.timers.add(handle)
        if self.frozen:
            handle.frozen_remaining = delay
        else:
            handle.event = self.world.schedule_at(
                self.time_source() + delay, self._fire, handle, node=self.node
            )
        return handle

    def _fire(self, handle: TimerHandle) -> None:
        handle.event = None
        if handle.dead:
            return
        self.timers.discard(handle)
        handle.dead = True
        handle.callback(*handle.args)

    def discard(self, handle: TimerHandle) -> None:
        self.timers.discard(handle)

    def freeze(self) -> int:
        """Suspend all live timers; returns how many were frozen."""
        if self.frozen:
            return 0
        self.frozen = True
        count = 0
        now = self.time_source()
        for handle in self.timers:
            if handle.event is not None:
                handle.frozen_remaining = handle.event.remaining(now)
                handle.event.cancel()
                handle.event = None
                count += 1
        # A freeze marks the start of a node halt; the debugger's
        # breakpoint log subscribes to this (dormant otherwise).
        self.world.bus.emit(ev.TimerFrozen, time=now, node=self.node, count=count)
        return count

    def thaw(self) -> int:
        """Resume frozen timers with their remaining durations."""
        if not self.frozen:
            return 0
        self.frozen = False
        count = 0
        now = self.time_source()
        for handle in self.timers:
            if handle.frozen_remaining is not None and not handle.dead:
                remaining = handle.frozen_remaining
                handle.frozen_remaining = None
                handle.event = self.world.schedule_at(
                    now + remaining, self._fire, handle, node=self.node
                )
                count += 1
        self.world.bus.emit(ev.TimerThawed, time=now, node=self.node, count=count)
        return count
