"""The rejected packet-monitor RPC debugging design (paper §4.2).

"One way ... was to monitor all RPC packets through a hook in the network
device driver.  A state machine would be maintained for each in-progress
RPC ... It became clear however that the work performed in the RPC
debugging support would be of the same order as that in the RPC
implementation itself.  Thus RPCs might take twice as long when under
control of the debugger.  This was unacceptable."

We implement it anyway, as the ablation of experiment E2: attaching a
:class:`PacketMonitor` to a node's runtime both (a) reconstructs per-call
state machines from the raw packet stream and (b) charges the
`rpc_monitor_packet_cost` that models the duplicated protocol work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ring.packets import TRACE_DELIVERED, TRACE_SENT, TraceRecord

if TYPE_CHECKING:
    from repro.ring.network import Ring
    from repro.rpc.runtime import RpcRuntime


class MonitoredCall:
    """State machine reconstructed purely from observed packets."""

    def __init__(self, call_id: int):
        self.call_id = call_id
        self.state = "unknown"
        self.service: Optional[str] = None
        self.proc: Optional[str] = None
        self.protocol: Optional[str] = None
        self.call_packets = 0
        self.reply_packets = 0
        self.first_seen: Optional[int] = None
        self.last_seen: Optional[int] = None

    def describe(self) -> dict:
        return {
            "call_id": self.call_id,
            "state": self.state,
            "service": self.service,
            "proc": self.proc,
            "protocol": self.protocol,
            "call_packets": self.call_packets,
            "reply_packets": self.reply_packets,
        }


class PacketMonitor:
    """Driver-hook monitor attached to one node's view of the ring."""

    def __init__(self, ring: "Ring", runtime: "RpcRuntime"):
        self.ring = ring
        self.runtime = runtime
        self.node_id = runtime.node.node_id
        self.calls: dict[int, MonitoredCall] = {}
        ring.trace_hooks.append(self._on_trace)
        runtime.monitor = self  # switches on the per-packet cost

    def detach(self) -> None:
        if self._on_trace in self.ring.trace_hooks:
            self.ring.trace_hooks.remove(self._on_trace)
        if self.runtime.monitor is self:
            self.runtime.monitor = None

    # ------------------------------------------------------------------

    def _on_trace(self, record: TraceRecord) -> None:
        packet = record.packet
        if packet.kind not in ("rpc_call", "rpc_reply"):
            return
        # The driver hook sees packets this node sends or receives.
        if self.node_id not in (packet.src, packet.dst):
            return
        if record.event not in (TRACE_SENT, TRACE_DELIVERED):
            return
        payload = packet.payload
        call_id = payload.get("call_id")
        if call_id is None:
            return
        call = self.calls.get(call_id)
        if call is None:
            call = MonitoredCall(call_id)
            self.calls[call_id] = call
            call.first_seen = record.time
        call.last_seen = record.time
        if packet.kind == "rpc_call":
            call.call_packets += 1
            call.service = payload.get("service", call.service)
            call.proc = payload.get("proc", call.proc)
            call.protocol = payload.get("protocol", call.protocol)
            if call.call_packets == 1:
                call.state = "call_sent"
            else:
                call.state = "retransmitting"
        else:
            call.reply_packets += 1
            if payload.get("status") == "ok":
                call.state = "completed"
            else:
                call.state = "failed"

    # ------------------------------------------------------------------

    def in_progress(self) -> list[dict]:
        return [
            call.describe()
            for call in self.calls.values()
            if call.state in ("call_sent", "retransmitting")
        ]

    def describe(self, call_id: int) -> Optional[dict]:
        call = self.calls.get(call_id)
        return call.describe() if call else None
