"""The rejected packet-monitor RPC debugging design (paper §4.2).

"One way ... was to monitor all RPC packets through a hook in the network
device driver.  A state machine would be maintained for each in-progress
RPC ... It became clear however that the work performed in the RPC
debugging support would be of the same order as that in the RPC
implementation itself.  Thus RPCs might take twice as long when under
control of the debugger.  This was unacceptable."

We implement it anyway, as the ablation of experiment E2: attaching a
:class:`PacketMonitor` to a node's runtime both (a) reconstructs per-call
state machines from the raw packet stream and (b) charges the
`rpc_monitor_packet_cost` that models the duplicated protocol work.

The monitor is a pure subscriber of the world's :mod:`repro.obs` bus
(``PacketSent`` / ``PacketDelivered``).  The state transition itself is
the standalone :func:`observe_packet`, so it can be replayed offline from
any recorded packet stream — the regression test drives it both live and
from a replay and asserts identical state machines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs import events as ev

if TYPE_CHECKING:
    from repro.net.base import Transport
    from repro.net.packets import BasicBlock
    from repro.rpc.runtime import RpcRuntime


class MonitoredCall:
    """State machine reconstructed purely from observed packets."""

    def __init__(self, call_id: int):
        self.call_id = call_id
        self.state = "unknown"
        self.service: Optional[str] = None
        self.proc: Optional[str] = None
        self.protocol: Optional[str] = None
        self.call_packets = 0
        self.reply_packets = 0
        self.first_seen: Optional[int] = None
        self.last_seen: Optional[int] = None

    def describe(self) -> dict:
        return {
            "call_id": self.call_id,
            "state": self.state,
            "service": self.service,
            "proc": self.proc,
            "protocol": self.protocol,
            "call_packets": self.call_packets,
            "reply_packets": self.reply_packets,
        }


def observe_packet(
    calls: dict[int, MonitoredCall], packet: "BasicBlock", at: int
) -> Optional[MonitoredCall]:
    """Fold one observed RPC packet into the per-call state machines.

    Pure with respect to everything but ``calls``: replaying the same
    packet sequence reconstructs the same table.  Returns the touched
    call, or ``None`` for packets without a call id.
    """
    payload = packet.payload
    call_id = payload.get("call_id")
    if call_id is None:
        return None
    call = calls.get(call_id)
    if call is None:
        call = MonitoredCall(call_id)
        calls[call_id] = call
        call.first_seen = at
    call.last_seen = at
    if packet.kind == "rpc_call":
        call.call_packets += 1
        call.service = payload.get("service", call.service)
        call.proc = payload.get("proc", call.proc)
        call.protocol = payload.get("protocol", call.protocol)
        if call.call_packets == 1:
            call.state = "call_sent"
        else:
            call.state = "retransmitting"
    else:
        call.reply_packets += 1
        if payload.get("status") == "ok":
            call.state = "completed"
        else:
            call.state = "failed"
    return call


class PacketMonitor:
    """Driver-hook monitor attached to one node's view of the fabric."""

    def __init__(self, ring: "Transport", runtime: "RpcRuntime"):
        self.ring = ring
        self.runtime = runtime
        self.node_id = runtime.node.node_id
        self.calls: dict[int, MonitoredCall] = {}
        self._bus = ring.bus
        self._bus.subscribe(ev.PacketSent, self._on_packet_event)
        self._bus.subscribe(ev.PacketDelivered, self._on_packet_event)
        runtime.monitor = self  # switches on the per-packet cost

    def detach(self) -> None:
        self._bus.unsubscribe(ev.PacketSent, self._on_packet_event)
        self._bus.unsubscribe(ev.PacketDelivered, self._on_packet_event)
        if self.runtime.monitor is self:
            self.runtime.monitor = None

    # ------------------------------------------------------------------

    def _on_packet_event(self, event) -> None:
        packet = event.packet
        if packet.kind not in ("rpc_call", "rpc_reply"):
            return
        # The driver hook sees packets this node sends or receives.
        if self.node_id not in (packet.src, packet.dst):
            return
        observe_packet(self.calls, packet, event.time)

    # ------------------------------------------------------------------

    def in_progress(self) -> list[dict]:
        return [
            call.describe()
            for call in self.calls.values()
            if call.state in ("call_sent", "retransmitting")
        ]

    def describe(self, call_id: int) -> Optional[dict]:
        call = self.calls.get(call_id)
        return call.describe() if call else None
