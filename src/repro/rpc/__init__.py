"""Mayflower RPC: exactly-once and maybe protocols with integral debugging
support (info blocks, call tables, recent-call buffer), plus the rejected
packet-monitor design for the paper's §4.2 ablation.
"""

from repro.rpc.debug import (
    ClientCallRecord,
    RecentCallBuffer,
    ServerCallRecord,
    make_info_block,
)
from repro.rpc.marshal import (
    MarshalError,
    Signature,
    check_type,
    marshal,
    unmarshal,
    wire_size,
)
from repro.rpc.monitor import PacketMonitor
from repro.rpc.registry import ServiceRegistry
from repro.rpc.runtime import RPC_PORT, RpcRuntime, ServerCallContext, remote_call
from repro.rpc.timers import TimerSet

__all__ = [
    "ClientCallRecord",
    "RecentCallBuffer",
    "ServerCallRecord",
    "make_info_block",
    "MarshalError",
    "Signature",
    "check_type",
    "marshal",
    "unmarshal",
    "wire_size",
    "PacketMonitor",
    "ServiceRegistry",
    "RPC_PORT",
    "RpcRuntime",
    "ServerCallContext",
    "remote_call",
    "TimerSet",
]
