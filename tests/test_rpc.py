"""Unit and integration tests for the RPC runtime."""

import pytest

from repro.cluster import Cluster
from repro.cvm import CluArray, CluRecord, RpcFailure
from repro.mayflower.syscalls import Sleep
from repro.params import Params
from repro.rpc import (
    MarshalError,
    PacketMonitor,
    RecentCallBuffer,
    Signature,
    marshal,
    remote_call,
    unmarshal,
)
from repro.sim import MS

ADDER = """
proc add(a: int, b: int) returns int
  return a + b
end
proc slow(a: int) returns int
  sleep(20000)
  return a * 2
end
proc boom() returns int
  return 1 / 0
end
"""


def make_pair(seed=0, **params):
    cluster = Cluster(names=["client", "server"], seed=seed, params=Params(**params))
    server_image = cluster.load_program(ADDER, "server")
    cluster.rpc("server").export_vm(
        "calc", server_image, {"add": "add", "slow": "slow", "boom": "boom"}
    )
    return cluster


# ----------------------------------------------------------------------
# Marshalling
# ----------------------------------------------------------------------


def test_marshal_roundtrip_scalars():
    for value in (None, True, False, 0, -5, 123456, "", "hello"):
        assert unmarshal(marshal(value)) == value


def test_marshal_roundtrip_structures():
    value = CluRecord(
        "point", {"x": 1, "y": CluArray([1, 2, CluRecord("q", {"z": "s"})])}
    )
    rebuilt = unmarshal(marshal(value))
    assert rebuilt == value
    assert rebuilt is not value  # pass-by-value
    assert rebuilt.fields["y"] is not value.fields["y"]


def test_marshal_rejects_untransmissible():
    with pytest.raises(MarshalError):
        marshal(object())


def test_signature_checks():
    sig = Signature(["int", "string"], "int")
    sig.check_args([1, "x"])
    with pytest.raises(MarshalError):
        sig.check_args([1])
    with pytest.raises(MarshalError):
        sig.check_args(["x", 1])
    with pytest.raises(MarshalError):
        sig.check_args([True, "x"])  # bool is not int


def test_signature_record_and_array_types():
    sig = Signature(["array[int]", "point"], "any")
    sig.check_args([CluArray([1, 2]), CluRecord("point", {"x": 1})])
    with pytest.raises(MarshalError):
        sig.check_args([CluArray(["s"]), CluRecord("point", {"x": 1})])
    with pytest.raises(MarshalError):
        sig.check_args([CluArray([1]), CluRecord("other", {"x": 1})])


# ----------------------------------------------------------------------
# Recent-call buffer (paper: ten slots)
# ----------------------------------------------------------------------


def test_recent_buffer_caps_at_ten():
    buffer = RecentCallBuffer(10)
    for i in range(25):
        buffer.record(i, i % 2 == 0)
    entries = buffer.entries()
    assert len(entries) == 10
    assert [cid for cid, _ in entries] == list(range(15, 25))
    assert buffer.lookup(24) is True
    assert buffer.lookup(23) is False
    assert buffer.lookup(3) is None  # aged out


# ----------------------------------------------------------------------
# Exactly-once calls
# ----------------------------------------------------------------------


def test_vm_to_vm_call():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.add(20, 22)
  print r
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["42"]


def test_null_rpc_latency_about_16ms():
    """Calibration: a null call takes ~16 ms, so +400us is ~2.5% (E1)."""
    cluster = Cluster(names=["client", "server"])
    cluster.rpc("server").export_native("nullsvc", {"ping": lambda ctx: None})
    done = {}

    def client(node):
        start = node.world.now
        result = yield from remote_call(node.rpc, "nullsvc", "ping")
        done["latency"] = node.world.now - start
        done["result"] = result

    node = cluster.node("client")
    node.spawn(client(node), name="client")
    cluster.run()
    assert done["result"] is None
    assert 14 * MS < done["latency"] < 19 * MS


def test_native_call_from_native_process():
    cluster = Cluster(names=["a", "b"])
    cluster.rpc("b").export_native(
        "echo", {"twice": lambda ctx, x: x * 2}
    )
    out = {}

    def caller(node):
        out["r"] = yield from remote_call(node.rpc, "echo", "twice", [21])

    node = cluster.node("a")
    node.spawn(caller(node), name="caller")
    cluster.run()
    assert out["r"] == 42


def test_blocking_native_handler():
    cluster = Cluster(names=["a", "b"])

    def slow_handler(ctx, x):
        yield Sleep(5 * MS)
        return x + 1

    cluster.rpc("b").export_native("svc", {"slow": slow_handler})
    out = {}

    def caller(node):
        out["r"] = yield from remote_call(node.rpc, "svc", "slow", [1])

    node = cluster.node("a")
    node.spawn(caller(node), name="caller")
    cluster.run()
    assert out["r"] == 2


def test_unknown_service_fails_fast():
    cluster = Cluster(names=["a", "b"])
    out = {}

    def caller(node):
        out["r"] = yield from remote_call(node.rpc, "ghost", "x", [])

    node = cluster.node("a")
    node.spawn(caller(node), name="caller")
    cluster.run()
    assert isinstance(out["r"], RpcFailure)
    assert "unknown service" in out["r"].reason


def test_remote_execution_error_returns_failure():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.boom()
  print failed(r)
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["true"]


def test_signature_rejects_bad_args_client_side():
    cluster = Cluster(names=["a", "b"])
    cluster.rpc("b").export_native(
        "typed",
        {"inc": lambda ctx, x: x + 1},
        signatures={"inc": Signature(["int"], "int")},
    )
    out = {}

    def caller(node):
        out["r"] = yield from remote_call(node.rpc, "typed", "inc", ["oops"])

    node = cluster.node("a")
    node.spawn(caller(node), name="caller")
    cluster.run()
    assert isinstance(out["r"], RpcFailure)
    assert "marshal error" in out["r"].reason
    # The bad call never touched the network.
    assert cluster.ring.total_sent == 0


def test_exactly_once_survives_lost_call_packet():
    cluster = make_pair()
    dropped = []

    def drop_first_call(packet):
        if packet.kind == "rpc_call" and not dropped:
            dropped.append(packet.packet_id)
            return True
        return False

    cluster.ring.drop_filters.append(drop_first_call)
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.add(1, 2)
  print r
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["3"]
    assert dropped  # the retransmission saved the call


def test_exactly_once_survives_lost_reply_packet():
    cluster = make_pair()
    dropped = []

    def drop_first_reply(packet):
        if packet.kind == "rpc_reply" and not dropped:
            dropped.append(packet.packet_id)
            return True
        return False

    cluster.ring.drop_filters.append(drop_first_reply)
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.add(1, 2)
  print r
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["3"]
    assert dropped
    # Dedup: the server must have executed the call exactly once.
    server_records = list(cluster.rpc("server").server_table.values())
    assert len(server_records) == 1


def test_exactly_once_gives_up_on_dead_node():
    cluster = make_pair()
    cluster.node("server").crash()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.add(1, 2)
  print failed(r)
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["true"]
    history = cluster.rpc("client").client_history
    assert history[0].info_block["retries"] == Params().rpc_max_retransmits


def test_maybe_call_success():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote maybe calc.add(2, 3)
  print r
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["5"]


def test_maybe_call_fails_on_lost_call_packet():
    cluster = make_pair()
    cluster.ring.drop_filters.append(lambda p: p.kind == "rpc_call")
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote maybe calc.add(2, 3)
  print failed(r)
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["true"]
    # Server never saw the call: that is the E8 diagnosis signal.
    assert cluster.rpc("server").server_table == {}


def test_maybe_call_fails_on_lost_reply_packet():
    cluster = make_pair()
    cluster.ring.drop_filters.append(lambda p: p.kind == "rpc_reply")
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote maybe calc.add(2, 3)
  print failed(r)
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert client_image.console == ["true"]
    # The server *did* execute it: reply loss, not call loss (E8).
    records = list(cluster.rpc("server").server_table.values())
    assert len(records) == 1 and records[0].completed


def test_recent_call_buffer_records_outcomes():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var a: int := remote calc.add(1, 1)
  var b: int := remote maybe ghost.nothing(1)
  print a
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    outcomes = cluster.rpc("client").recent_outcomes()
    assert len(outcomes) == 2
    assert outcomes[0][1] is True
    assert outcomes[1][1] is False


def test_info_block_visible_during_call():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.slow(21)
  print r
end
""",
        "client",
    )
    from repro.cvm.interp import VmExecutor

    executor = VmExecutor(client_image, "main", [])
    cluster.node("client").spawn(executor, name="main")
    cluster.run(until=10 * MS)  # call in flight
    info = executor.current_info_block()
    assert info is not None
    assert info["remote_proc"] == "calc.slow"
    assert info["state"] in ("marshalling", "call_sent")
    # And the client call table associates the call id with the process.
    calls = cluster.rpc("client").inprogress_calls()
    assert len(calls) == 1
    assert calls[0]["call_id"] == info["call_id"]
    cluster.run()
    assert client_image.console == ["42"]


def test_server_table_associates_worker_with_call():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote calc.slow(21)
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run(until=15 * MS)  # server is executing `slow`
    serving = cluster.rpc("server").serving_calls()
    assert len(serving) == 1
    assert serving[0]["worker_pid"] is not None
    assert serving[0]["proc"] == "slow"


def test_concurrent_calls_from_two_processes():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc worker(n: int)
  var r: int := remote calc.add(n, n)
  print r
end
proc main()
  spawn worker(1)
  spawn worker(2)
  sleep(100000)
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run()
    assert sorted(client_image.console) == ["2", "4"]


def test_debug_support_off_removes_overhead_and_buffer():
    cluster = Cluster(names=["client", "server"])
    cluster.rpc("client").debug_support = False
    cluster.rpc("server").debug_support = False
    cluster.rpc("server").export_native("svc", {"ping": lambda ctx: None})
    out = {}

    def caller(node):
        start = node.world.now
        yield from remote_call(node.rpc, "svc", "ping")
        out["latency"] = node.world.now - start

    node = cluster.node("client")
    node.spawn(caller(node), name="caller")
    cluster.run()
    assert cluster.rpc("client").recent_outcomes() == []
    # Compare with instrumented latency: difference ~ rpc_debug_overhead.
    cluster2 = Cluster(names=["client", "server"])
    cluster2.rpc("server").export_native("svc", {"ping": lambda ctx: None})
    out2 = {}

    def caller2(node):
        start = node.world.now
        yield from remote_call(node.rpc, "svc", "ping")
        out2["latency"] = node.world.now - start

    node2 = cluster2.node("client")
    node2.spawn(caller2(node2), name="caller")
    cluster2.run()
    overhead = out2["latency"] - out["latency"]
    assert abs(overhead - Params().rpc_debug_overhead) < 100


def test_packet_monitor_reconstructs_state_and_doubles_latency():
    """E2's mechanism: the §4.2 design roughly doubles call time."""
    baseline = Cluster(names=["client", "server"])
    baseline.rpc("server").export_native("svc", {"ping": lambda ctx: None})
    t0 = {}

    def caller0(node):
        start = node.world.now
        yield from remote_call(node.rpc, "svc", "ping")
        t0["latency"] = node.world.now - start

    node = baseline.node("client")
    node.spawn(caller0(node), name="caller")
    baseline.run()

    monitored = Cluster(names=["client", "server"])
    monitored.rpc("server").export_native("svc", {"ping": lambda ctx: None})
    client_mon = PacketMonitor(monitored.ring, monitored.rpc("client"))
    PacketMonitor(monitored.ring, monitored.rpc("server"))
    t1 = {}

    def caller1(node):
        start = node.world.now
        yield from remote_call(node.rpc, "svc", "ping")
        t1["latency"] = node.world.now - start

    node = monitored.node("client")
    node.spawn(caller1(node), name="caller")
    monitored.run()

    ratio = t1["latency"] / t0["latency"]
    assert 1.7 < ratio < 2.4  # "RPCs might take twice as long"
    calls = list(client_mon.calls.values())
    assert len(calls) == 1
    assert calls[0].state == "completed"
    assert calls[0].service == "svc"


def test_rpc_freeze_pauses_protocol_timers():
    cluster = make_pair()
    client_image = cluster.load_program(
        """
proc main()
  var r: int := remote maybe calc.add(1, 1)
  print failed(r)
end
""",
        "client",
    )
    cluster.ring.drop_filters.append(lambda p: p.kind == "rpc_reply")
    cluster.spawn_vm("client", client_image, "main")
    cluster.run(until=10 * MS)
    cluster.rpc("client").freeze()
    cluster.run(until=200 * MS)  # far past the maybe timeout
    assert client_image.console == []  # timer frozen: no failure yet
    cluster.rpc("client").thaw()
    cluster.run()
    assert client_image.console == ["true"]
