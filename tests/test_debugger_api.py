"""The unified DebuggerSession protocol."""

from repro import MS, Cluster, DebuggerSession, Pilgrim
from repro.debugger.repl import PilgrimRepl
from repro.live.debugger import LiveDebugger

COUNTER = (
    "proc main()\n  var i: int := 0\n  while true do\n"
    "    i := i + 1\n    sleep(1000)\n  end\nend"
)


def _session():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(COUNTER, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    return dbg


# ----------------------------------------------------------------------
# One protocol, two backends
# ----------------------------------------------------------------------


def test_both_backends_satisfy_the_protocol():
    assert issubclass(Pilgrim, DebuggerSession)
    assert issubclass(LiveDebugger, DebuggerSession)
    dbg = _session()
    assert isinstance(dbg, DebuggerSession)


def test_status_is_local_and_summarizes_session():
    dbg = _session()
    before = dbg.cluster.world.now
    status = dbg.status()
    assert dbg.cluster.world.now == before  # no round trips
    assert status["mode"] == "sim"
    assert status["connected"] == [dbg.cluster.node("app").node_id]
    assert status["breakpoints"] == 0
    assert status["recording"] is False and status["trace_loaded"] is False


# ----------------------------------------------------------------------
# The deprecated aliases served their one release of grace and are gone
# ----------------------------------------------------------------------


def test_deprecated_aliases_are_removed():
    assert not hasattr(Pilgrim, "break_at")
    assert not hasattr(Pilgrim, "clear")
    assert not hasattr(LiveDebugger, "threads")


# ----------------------------------------------------------------------
# The REPL drives time travel against a recorded trace (acceptance)
# ----------------------------------------------------------------------


def test_repl_time_travel_over_recorded_trace():
    dbg = _session()
    repl = PilgrimRepl(dbg)
    repl.run_script([
        "record",
        "break app app 4",
        "wait",
        "record stop",
        "status",
        "why",
        "at 1ms",
        "fstep",
        "rstep",
        "causes 3",
    ])
    out = "\n".join(repl.lines)
    assert "recording (finish with 'record stop')" in out
    assert "* breakpoint:" in out
    assert "trace loaded" in out
    assert "trace_loaded: True" in out
    # why: at the end of the recording the program sits in a breakpoint.
    assert "halted on nodes" in out
    assert "BreakpointHit" in out
    # at/fstep/rstep echo cursor moments.
    assert "(before first event)" in out or "@#" in out

    # The cursor really moved: at(1ms) then fstep/rstep land back.
    moment = dbg.at(1 * MS)
    assert dbg.forward_step().index == moment.index + 1
    assert dbg.reverse_step().index == moment.index


def test_repl_reports_missing_trace_gracefully():
    repl = PilgrimRepl(_session())
    repl.run_script(["rstep"])
    assert any(line.startswith("!no trace loaded") for line in repl.lines)
