"""Advanced debugger behaviours: anytime stack inspection, multi-module
nodes, and randomized halt patterns against the lease strategies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MS, SEC, Cluster, Pilgrim
from repro.servers.leases import LeaseTable
from repro.servers.strategies import make_strategy

SPIN = "proc main()\n  while true do\n    sleep(5000)\n  end\nend"


def test_stacks_examinable_while_running():
    """§5.5: 'Pilgrim allows procedure call stacks to be examined at any
    time, not just when the process that owns the stack has hit a
    breakpoint.'"""
    source = """
proc inner(d: int) returns int
  var spin: int := 0
  while spin < 1000000 do
    spin := spin + 1
  end
  return d
end
proc main()
  while true do
    var r: int := inner(7)
  end
end
"""
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(source, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    cluster.run_for(20 * MS)
    pid = next(p["pid"] for p in dbg.processes("app") if p["name"] == "main")
    # No halt, no breakpoint: the process is READY/RUNNING right now.
    frames = dbg.backtrace("app", pid)
    names = [f["proc"] for f in frames]
    assert names[-1] == "main"
    assert "inner" in names
    agent = cluster.node("app").agent
    assert not agent.halted  # the program was never stopped
    # And the program keeps making progress afterwards.
    spin_before = frames[0]["locals"].get("spin", 0)
    cluster.run_for(20 * MS)
    frames2 = dbg.backtrace("app", pid)
    assert frames2[0]["locals"] != frames[0]["locals"] or spin_before > 0


def test_two_modules_on_one_node():
    """A node can link several programs; breakpoints address (module,
    func, pc) so they do not collide."""
    cluster = Cluster(names=["app", "debugger"])
    image_one = cluster.load_program(
        "proc main()\n  var i: int := 0\n  while true do\n    i := i + 1\n"
        "    sleep(2000)\n  end\nend",
        "app",
        module="alpha",
    )
    image_two = cluster.load_program(
        "proc main()\n  var j: int := 0\n  while true do\n    j := j + 100\n"
        "    sleep(2000)\n  end\nend",
        "app",
        module="beta",
    )
    cluster.spawn_vm("app", image_one, "main", name="alpha.main")
    cluster.spawn_vm("app", image_two, "main", name="beta.main")
    dbg = Pilgrim(cluster, home="debugger")
    infos = dbg.connect("app")
    assert infos[0]["modules"] == ["alpha", "beta"]
    dbg.set_breakpoint("app", "beta", line=4)  # j := j + 100
    hit = dbg.wait_for_breakpoint()
    assert hit["module"] == "beta"
    j = dbg.read_var("app", hit["pid"], "j")
    assert j % 100 == 0
    # The alpha process was halted too, but never trapped.
    agent = cluster.node("app").agent
    assert len(agent.trapped) == 1
    dbg.resume("app")


def test_breakpoints_on_two_nodes_both_fire():
    cluster = Cluster(names=["a", "b", "debugger"])
    for name in ("a", "b"):
        image = cluster.load_program(
            "proc main()\n  var i: int := 0\n  while true do\n    i := i + 1\n"
            "    sleep(3000)\n  end\nend",
            name,
        )
        cluster.spawn_vm(name, image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("a", "b")
    dbg.set_breakpoint("a", "a", line=4)
    dbg.set_breakpoint("b", "b", line=4)
    hit1 = dbg.wait_for_breakpoint()
    dbg.resume(hit1["node"])
    hit2 = dbg.wait_for_breakpoint()
    dbg.resume(hit2["node"])
    nodes_hit = {hit1["node"], hit2["node"]}
    # Both breakpoints are live; over two waits we see at least one node,
    # and resuming never wedges the session.
    assert nodes_hit <= {0, 1}
    assert len(nodes_hit) >= 1


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=10, max_value=120),  # run ms before halt
            st.integers(min_value=10, max_value=400),  # halt ms
        ),
        min_size=1,
        max_size=3,
    ),
    st.sampled_from(["fig3", "fig4"]),
)
@settings(max_examples=10, deadline=None)
def test_strategies_never_expire_lease_early_under_random_halts(
    pattern, strategy_name
):
    """Property: whatever the breakpoint pattern, a lease whose client
    keeps refreshing (in logical time) never expires; the total logical
    time the lease survives unrefreshed is ~ the timeout."""
    cluster = Cluster(names=["client", "server", "debugger"], seed=7)
    image = cluster.load_program(SPIN, "client")
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client")
    strategy = make_strategy(strategy_name)
    table = LeaseTable(cluster.node("server"))
    lease = table.create(cluster.node("client").node_id, 250 * MS, strategy)
    client_clock = cluster.node("client").clock
    start_logical = client_clock.logical_now()

    for run_ms, halt_ms in pattern:
        cluster.run_for(run_ms * MS)
        if not lease.alive:
            break
        dbg.halt("client")
        dbg.run_for(halt_ms * MS)
        dbg.resume("client")

    if lease.alive:
        # Let it expire naturally now.
        cluster.run_for(2 * SEC)
    assert not lease.alive
    lived_logical = client_clock.logical_now() - start_logical
    # The lease lived at least its timeout in the client's logical time
    # (no premature expiry), and not absurdly longer (bounded extension;
    # generous bound covers support-RPC latencies).
    assert lived_logical >= 240 * MS
