"""Replay the committed golden trace: a cross-commit determinism guard.

The trace file was recorded once (see ``tests/golden_scenario.py``) and
is committed; replaying it here catches any change that perturbs the
simulation's event stream — scheduler ordering, RNG consumption, packet
timing, normalization format — as a first-divergent-event report rather
than a silent break.  If a change alters the stream *on purpose*,
regenerate with ``python -m tests.golden_scenario`` and say so in the
commit.
"""

from repro import Trace, replay_trace
from tests.golden_scenario import GOLDEN_PATH, GOLDEN_SEED, build

GOLDEN_FINGERPRINT = (
    "47ca287c48c83655b4c20871b4aac199e4bc5e67fd3c38be28e6baff1304ecee"
)


def test_golden_trace_replays_byte_identically():
    trace = Trace.load(GOLDEN_PATH)
    assert trace.seed == GOLDEN_SEED
    assert trace.fingerprint() == GOLDEN_FINGERPRINT
    assert trace.footer["fingerprint"] == GOLDEN_FINGERPRINT
    report = replay_trace(trace, build)
    assert report.identical
    assert report.fingerprint == GOLDEN_FINGERPRINT
    assert report.checkpoints_verified == len(trace.checkpoints)
