"""Replay the committed golden trace: a cross-commit determinism guard.

The trace file was recorded once (see ``tests/golden_scenario.py``) and
is committed; replaying it here catches any change that perturbs the
simulation's event stream — scheduler ordering, RNG consumption, packet
timing, normalization format — as a first-divergent-event report rather
than a silent break.  If a change alters the stream *on purpose*,
regenerate with ``python -m tests.golden_scenario`` and say so in the
commit.
"""

import pytest

from repro import Trace, replay_trace
from tests.golden_scenario import (
    GOLDEN_BINARY_PATH,
    GOLDEN_PATH,
    GOLDEN_SEED,
    build,
)

GOLDEN_FINGERPRINT = (
    "47ca287c48c83655b4c20871b4aac199e4bc5e67fd3c38be28e6baff1304ecee"
)


@pytest.mark.parametrize(
    "path", [GOLDEN_PATH, GOLDEN_BINARY_PATH], ids=["jsonl", "binary"]
)
def test_golden_trace_replays_byte_identically(path):
    trace = Trace.load(path)
    assert trace.seed == GOLDEN_SEED
    assert trace.fingerprint() == GOLDEN_FINGERPRINT
    assert trace.footer["fingerprint"] == GOLDEN_FINGERPRINT
    report = replay_trace(trace, build)
    assert report.identical
    assert report.fingerprint == GOLDEN_FINGERPRINT
    assert report.checkpoints_verified == len(trace.checkpoints)


def test_golden_twins_are_the_same_recording():
    """The committed binary twin is a re-encoding of the JSONL golden,
    not a second recording: same lines, checkpoints, header, footer."""
    jsonl = Trace.load(GOLDEN_PATH)
    binary = Trace.load(GOLDEN_BINARY_PATH)
    assert binary.lines() == jsonl.lines()
    assert binary.header == jsonl.header
    assert binary.footer == jsonl.footer
    assert [c.to_dict() for c in binary.checkpoints] == \
        [c.to_dict() for c in jsonl.checkpoints]


def test_golden_twins_convert_byte_faithfully(tmp_path):
    """Conversion is the exact inverse in both directions: re-encoding
    either committed twin reproduces the other byte for byte (both
    sides dump JSON in the same canonical sorted-keys form)."""
    out_jsonl = tmp_path / "golden.trace.jsonl"
    Trace.load(GOLDEN_BINARY_PATH).save(out_jsonl, format="jsonl")
    assert out_jsonl.read_bytes() == GOLDEN_PATH.read_bytes()
    out_binary = tmp_path / "golden.trace.bin"
    Trace.load(GOLDEN_PATH).save(out_binary, format="binary")
    assert out_binary.read_bytes() == GOLDEN_BINARY_PATH.read_bytes()
