"""Debugger-as-a-service: wire protocol, daemon sessions, remote REPL."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.campaign import Corpus, build_grid, get_plan, run_campaign
from repro.cluster import Cluster
from repro.debugger.api import (
    Breakpoint,
    DebuggerSession,
    Frame,
    ProcessInfo,
    SessionStatus,
    TraceSummary,
)
from repro.debugger.errors import (
    ERROR_CODES,
    BadSessionError,
    DebuggerError,
    ServiceError,
    UnsupportedOperationError,
    error_from_wire,
)
from repro.debugger.pilgrim import Pilgrim
from repro.debugger.repl import COMMANDS, PilgrimRepl
from repro.faults import FaultPlan
from repro.replay import (
    BranchInfo,
    Moment,
    Perturbation,
    StateView,
    TraceSession,
    record_run,
)
from repro.service import ServiceClient, serve, wire_decode, wire_encode
from repro.service.daemon import COUNTER_PROGRAM
from repro.service.dispatch import wire_methods
from repro.sim.units import MS

# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon on a private socket; yields the socket path."""
    path = str(tmp_path / "svc.sock")
    ready = threading.Event()
    thread = threading.Thread(target=serve, args=(path, ready), daemon=True)
    thread.start()
    assert ready.wait(5)
    yield path
    try:
        ServiceClient(path, connect_retries=1).shutdown()
    except DebuggerError:
        pass
    thread.join(5)


def counter_world(seed=3):
    """The demo counter world, built locally (for parity checks)."""
    cluster = Cluster(names=["app", "debugger"], seed=seed)
    image = cluster.load_program(COUNTER_PROGRAM, "app")
    cluster.spawn_vm("app", image, "main")
    return Pilgrim(cluster, home="debugger")


def record_echo_trace(tmp_path, seed=5):
    """Record a short echo run (real RPC traffic) into a trace file."""
    from repro.campaign.scenarios import get_scenario

    scenario = get_scenario("echo_soak")
    cluster = Cluster(names=[*scenario.names, "debugger"], seed=seed)
    scenario.build(cluster)
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client", "server")
    dbg.start_recording()
    dbg.run_for(500 * MS)
    trace = dbg.stop_recording()
    path = tmp_path / "echo.trace.bin"
    trace.save(path)
    return path


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------


def test_wire_roundtrips_typed_records():
    frame = Frame(module="app", proc="main", line=4, pc=2,
                  locals={"i": 7}, node=0, pid=3)
    info = ProcessInfo(pid=3, name="main", state="halted",
                       trapped_at=("app", "main", 2))
    status = SessionStatus(mode="sim", session=1, connected=[0],
                           extra={"reachability": {0: "up"}})
    bp = Breakpoint(node=0, module="app", func="main", pc=2, line=4)
    payload = wire_decode(wire_encode(
        {"frames": [frame], "info": info, "status": status, "bp": bp}
    ))
    assert payload["frames"][0] == frame
    assert isinstance(payload["frames"][0], Frame)
    assert payload["info"].pid == 3 and payload["info"].state == "halted"
    assert list(payload["info"].trapped_at) == ["app", "main", 2]
    assert isinstance(payload["status"], SessionStatus)
    assert payload["status"]["reachability"] == {0: "up"}
    assert payload["bp"].key() == bp.key()


def test_wire_preserves_int_keyed_mappings():
    value = {0: {"name": "app"}, 1: {"name": "server"}}
    encoded = wire_encode(value)
    assert "__kv__" in encoded  # plain JSON would stringify the keys
    assert wire_decode(encoded) == value


def test_wire_unknown_record_degrades_to_dict():
    decoded = wire_decode({"__rec__": "FutureThing", "x": 1})
    assert decoded == {"x": 1}


def test_wire_unencodable_object_degrades_to_repr():
    encoded = wire_encode({"handle": object()})
    assert isinstance(encoded["handle"], str)


def test_errors_roundtrip_losslessly():
    for code, cls in ERROR_CODES.items():
        try:
            original = cls("boom", node="app", address=1, state="down")
        except TypeError:
            continue  # custom-constructor subclass (divergence)
        rebuilt = error_from_wire(original.to_wire())
        assert type(rebuilt) is cls
        assert rebuilt.code == code
        assert str(rebuilt) == "boom"
        assert rebuilt.node == "app" and rebuilt.address == 1


# ----------------------------------------------------------------------
# The method table derives from the REPL registry
# ----------------------------------------------------------------------


def test_wire_methods_derive_from_repl_registry():
    table = {row["op"]: row for row in wire_methods()}
    for command in COMMANDS.values():
        if command.op is None:
            continue
        assert command.op in table
        assert command.name in table[command.op]["commands"]
    # And the scripting-only extras ride along.
    assert "wait_for_breakpoint" in table
    assert "stop_recording" in table


def test_daemon_accepts_repl_aliases(daemon):
    with ServiceClient(daemon) as client:
        client.open("w1", "world", scenario="counter")
        client.request("connect", session="w1", args=("app",))
        # "bt" is the REPL alias of "backtrace"; both hit the same op.
        client.request("break", session="w1", args=("app", "app"),
                       kwargs={"line": 4})
        hit = client.request("wait_for_breakpoint", session="w1")
        via_alias = client.request("bt", session="w1",
                                   args=("app", hit["pid"]))
        via_op = client.request("backtrace", session="w1",
                                args=("app", hit["pid"]))
        assert via_alias == via_op
        assert isinstance(via_alias[0], Frame)


# ----------------------------------------------------------------------
# Sessions through the typed RemoteSession proxy
# ----------------------------------------------------------------------


def test_remote_session_implements_protocol(daemon):
    with ServiceClient(daemon) as client:
        session = client.session("any")
        assert isinstance(session, DebuggerSession)


def test_world_session_full_flow(daemon):
    with ServiceClient(daemon) as client:
        client.open("w1", "world", scenario="counter", seed=3)
        session = client.session("w1")
        infos = session.connect("app")
        assert list(infos) == [0] and infos[0]["name"] == "app"
        assert session.session_id == 1
        listing = session.processes("app")
        assert all(isinstance(info, ProcessInfo) for info in listing)
        bp = session.set_breakpoint("app", "app", line=4)
        assert isinstance(bp, Breakpoint) and bp.line == 4
        hit = session.wait_for_breakpoint()
        frames = session.backtrace("app", hit["pid"])
        assert isinstance(frames[0], Frame) and frames[0].proc == "main"
        assert session.read_var("app", hit["pid"], "i") == \
            frames[0].locals["i"]
        status = session.status()
        assert isinstance(status, SessionStatus)
        assert status.mode == "sim" and status.breakpoints == 1
        session.resume("app")
        session.disconnect()


def test_world_session_time_travel_over_wire(daemon):
    with ServiceClient(daemon) as client:
        client.open("w1", "world", scenario="counter", seed=3)
        session = client.session("w1")
        session.connect("app")
        session.start_recording()
        session.run_for(100 * MS)
        summary = session.stop_recording()
        assert isinstance(summary, TraceSummary)
        moment = session.at(50 * MS)
        assert isinstance(moment, Moment)
        assert isinstance(moment.view, StateView)
        assert isinstance(session.forward_step(), Moment)
        assert isinstance(session.reverse_step(), Moment)


def test_trace_session_over_wire(daemon, tmp_path):
    trace_path = record_echo_trace(tmp_path)
    with ServiceClient(daemon) as client:
        client.open("t1", "trace", path=str(trace_path))
        session = client.session("t1")
        session.connect()
        status = session.status()
        assert status.mode == "replay" and status.trace_loaded
        assert status["events"] > 0
        session.at(0)  # rewind: the client exits before the trace ends
        listing = session.processes()
        assert any(info.name == "main" for info in listing)
        moment = session.at(50 * MS)
        assert isinstance(moment, Moment) and moment.time <= 50 * MS
        with pytest.raises(UnsupportedOperationError) as excinfo:
            session.halt()
        assert excinfo.value.code == "unsupported"


def test_contract_check_over_wire(daemon, tmp_path):
    """``check``/``contracts`` round-trip as typed records."""
    from repro.contracts import UNIVERSAL_SET, ContractReport, check_trace
    from repro.replay import Trace

    trace_path = record_echo_trace(tmp_path)
    with ServiceClient(daemon) as client:
        client.open("t1", "trace", path=str(trace_path))
        session = client.session("t1")
        session.connect()
        report = session.check()
        assert isinstance(report, ContractReport)
        local = check_trace(Trace.load(trace_path), UNIVERSAL_SET)
        assert report.canonical() == local.canonical()
        named = session.check(["single_leader"])
        assert list(named.verdicts) == ["single_leader"]
        rows = session.contracts()
        assert any(row["name"] == "exactly_once_delivery" for row in rows)
        text = client.text("check", session="t1")
        assert any(line.strip().startswith(("OK", "VIOLATED"))
                   for line in text.splitlines())


def test_two_session_kinds_coexist(daemon, tmp_path):
    trace_path = record_echo_trace(tmp_path)
    with ServiceClient(daemon) as client:
        client.open("world", "world", scenario="counter", seed=3)
        client.open("postmortem", "trace", path=str(trace_path))
        live = client.session("world")
        dead = client.session("postmortem")
        live.connect("app")
        dead.connect()
        assert live.status().mode == "sim"
        assert dead.status().mode == "replay"
        rows = {row["name"]: row for row in client.sessions()}
        assert rows["world"]["state"] == "attached"
        assert rows["postmortem"]["state"] == "attached"


def record_forkable_trace(tmp_path, seed=3):
    """A ``record_run`` echo trace: re-executable, so branches can fork it."""
    from repro.campaign.scenarios import get_scenario

    scenario = get_scenario("echo")
    trace = record_run(scenario.build, [*scenario.names, "debugger"],
                       seed=seed, run_until=500 * MS,
                       checkpoint_every=100 * MS)
    path = tmp_path / "forkable.trace.bin"
    trace.save(path)
    return path


def test_branch_session_over_wire(daemon, tmp_path):
    trace_path = record_forkable_trace(tmp_path)
    pert = Perturbation.from_plan(
        FaultPlan().crash(at=250 * MS, node="server"), kind="crash")
    with ServiceClient(daemon) as client:
        client.open("whatif", "branch", path=str(trace_path),
                    builder="scenario:echo", checkpoint=1,
                    perturbation=json.dumps(pert.to_dict()))
        session = client.session("whatif")
        assert session.status().mode == "replay"
        # The branch is a full trace session: time travel works on it.
        assert session.at(0).time == 0
        # And it can fork again (a grandchild) — the builder rode along.
        grand = session.fork(Perturbation.from_plan(
            FaultPlan().crash(at=400 * MS, node="client"), kind="crash"))
        assert isinstance(grand, BranchInfo)
        assert grand.id in [b.id for b in session.branches()]
        diff = session.diff_branches("root", grand.id[:8])
        assert not diff.identical and diff.first_divergence is not None
        client.close_session("whatif")
        assert "whatif" not in {row["name"] for row in client.sessions()}


def test_branch_session_refuses_interactive_traces(daemon, tmp_path):
    trace_path = record_echo_trace(tmp_path)  # Pilgrim-driven: mid-run start
    pert = Perturbation.from_plan(
        FaultPlan().crash(at=100 * MS, node="server"), kind="crash")
    with ServiceClient(daemon) as client:
        client.open("whatif", "branch", path=str(trace_path),
                    builder="scenario:echo_soak",
                    perturbation=json.dumps(pert.to_dict()))
        # Dormant specs materialize at first touch; that is where the
        # non-re-executable recording is refused.
        with pytest.raises(DebuggerError, match="manually driven"):
            client.session("whatif").status()


def test_corpus_reproducer_debuggable_by_name(daemon, tmp_path):
    cells = build_grid(["echo"], [0], [("crash", get_plan("crash"))])
    corpus_dir = tmp_path / "corpus"
    run_campaign(cells, workers=1, shrink=True, corpus_dir=corpus_dir)
    label = Corpus.open(corpus_dir).entries()[0].label()

    # Directly: the corpus hands out a typed post-mortem session.
    session = Corpus.open(corpus_dir).open_session(label)
    assert isinstance(session, TraceSession)
    assert session.name == label

    # And through the daemon, by name.
    with ServiceClient(daemon) as client:
        client.open("bug", "corpus", root=str(corpus_dir), entry=label)
        remote = client.session("bug")
        remote.connect()
        status = remote.status()
        assert status.mode == "replay" and status["events"] > 0
        verdict = remote.why_halted()
        assert "halted" in verdict


def test_corpus_find_rejects_unknown_entry(tmp_path):
    corpus = Corpus.open(tmp_path / "empty")
    with pytest.raises(KeyError, match="unknown corpus entry"):
        corpus.find("nope")


# ----------------------------------------------------------------------
# Sessions survive across client connections (the daemon's whole point)
# ----------------------------------------------------------------------


def test_session_survives_across_client_invocations(daemon):
    first = ServiceClient(daemon, client="cli-alice")
    first.open("w1", "world", scenario="counter", seed=3)
    session = first.session("w1")
    session.connect("app")
    session.set_breakpoint("app", "app", line=4)
    first.close()  # the CLI process exits; no disconnect

    # A second invocation under the same identity reattaches seamlessly.
    second = ServiceClient(daemon, client="cli-alice")
    revived = second.session("w1")
    status = revived.status()
    assert status.session == 1 and status.breakpoints == 1
    hit = revived.wait_for_breakpoint()
    assert hit["line"] == 4
    second.close()


def test_dormant_sessions_materialize_lazily(daemon):
    with ServiceClient(daemon) as client:
        for index in range(5):
            client.open(f"parked-{index}", "world", scenario="counter")
        rows = {row["name"]: row["state"] for row in client.sessions()}
        assert all(state == "dormant" for state in rows.values())
        assert client.metrics()["snapshot"][
            "service.sessions_materialized"] == 0
        client.session("parked-0").connect("app")  # first touch builds
        assert client.metrics()["snapshot"][
            "service.sessions_materialized"] == 1


def test_unknown_session_and_method_are_typed_errors(daemon):
    with ServiceClient(daemon) as client:
        with pytest.raises(BadSessionError) as excinfo:
            client.session("ghost").status()
        assert excinfo.value.code == "bad_session"
        client.open("w1", "world", scenario="counter")
        with pytest.raises(ServiceError):
            client.request("frobnicate", session="w1")


# ----------------------------------------------------------------------
# REPL byte-identity: local backend vs the daemon
# ----------------------------------------------------------------------

REPL_SCRIPT = [
    "connect app",
    "ps app",
    "break app app 4",
    "wait",
    "bt app 3",
    "print app 3 i",
    "step app 3",
    "status",
    "time",
    "continue app",
    "record",
    "run 100ms",
    "record stop",
    "at 50ms",
    "fstep",
    "rstep",
    "why",
    "clear 1",
    "disconnect",
]


def test_repl_renders_byte_identical_locally_and_remotely(daemon):
    local = PilgrimRepl(counter_world(seed=3)).run_script(REPL_SCRIPT)
    with ServiceClient(daemon) as client:
        client.open("w1", "world", scenario="counter", seed=3)
        remote = PilgrimRepl(client.session("w1")).run_script(REPL_SCRIPT)
    assert local == remote


# ----------------------------------------------------------------------
# The CLI end to end (a real daemon process, two invocations)
# ----------------------------------------------------------------------


def _cli(socket_path, *argv, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-m", "repro.service", "--socket", socket_path,
         "--client", "cli-test", *argv],
        capture_output=True, text=True, timeout=120, env=env,
    )
    if check:
        assert result.returncode == 0, result.stderr
    return result


def test_cli_sessions_survive_between_invocations(tmp_path):
    socket_path = str(tmp_path / "cli.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    daemon_proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--socket", socket_path,
         "start"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        ServiceClient(socket_path, connect_retries=100).close()  # wait for boot
        _cli(socket_path, "open", "w1", "--kind", "world",
             "--scenario", "counter", "--seed", "3")
        first = _cli(socket_path, "script", "w1",
                     "connect app", "break app app 4", "wait")
        assert "* breakpoint" in first.stdout
        # A separate invocation reattaches to the same held session.
        second = _cli(socket_path, "script", "w1", "status", "bt app 3")
        assert "breakpoints: 1" in second.stdout
        assert "app.main" in second.stdout
        listing = _cli(socket_path, "sessions")
        assert "w1" in listing.stdout and "attached" in listing.stdout
        _cli(socket_path, "stop")
        assert daemon_proc.wait(timeout=30) == 0
        assert not os.path.exists(socket_path)
    finally:
        if daemon_proc.poll() is None:
            daemon_proc.kill()
