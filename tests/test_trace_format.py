"""The binary trace container: round-trips, sniffing, and corruption.

Every malformed-input path must raise a typed
:class:`repro.replay.TraceFormatError` carrying the byte offset of the
fault — a debugger's traces are its evidence, so a corrupt file has to
say *where* it broke, not die in ``struct.unpack``.
"""

import struct

import pytest

from repro import MS, record_run
from repro.replay import Trace, TraceFormatError, sniff_format
from repro.replay.cli import main as replay_cli
from repro.replay.format import MAGIC, _PREAMBLE, _RECORD

PING = """
proc main()
  var r: int := remote svc.echo(1)
  print r
end
"""

ECHO = "proc echo(x: int) returns int\n  return x\nend"


def small_trace():
    def build(cluster):
        image = cluster.load_program(ECHO, "b")
        cluster.rpc("b").export_vm("svc", image, {"echo": "echo"})
        client = cluster.load_program(PING, "a")
        cluster.spawn_vm("a", client, "main")
    return record_run(build, ["a", "b"], seed=3, run_until=100 * MS)


@pytest.fixture(scope="module")
def trace():
    return small_trace()


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("compress", [True, False], ids=["zlib", "raw"])
def test_binary_round_trip_is_lossless(trace, tmp_path, compress):
    from repro.replay.format import write_binary

    path = tmp_path / "t.trace.bin"
    write_binary(trace, path, compress=compress)
    loaded = Trace.load(path)
    assert loaded.lines() == trace.lines()
    assert loaded.header == trace.header
    assert loaded.footer == trace.footer
    assert loaded.fingerprint() == trace.fingerprint()
    assert [c.to_dict() for c in loaded.checkpoints] == \
        [c.to_dict() for c in trace.checkpoints]
    assert sniff_format(path) == "binary"


def test_save_infers_format_from_extension(trace, tmp_path):
    binary = tmp_path / "t.trace.bin"
    jsonl = tmp_path / "t.trace.jsonl"
    trace.save(binary)
    trace.save(jsonl)
    assert sniff_format(binary) == "binary"
    assert sniff_format(jsonl) == "jsonl"
    assert Trace.load(binary).lines() == Trace.load(jsonl).lines()
    # Binary should be markedly smaller than the JSONL view.
    assert binary.stat().st_size < jsonl.stat().st_size


def test_convert_cli_round_trips(trace, tmp_path, capsys):
    source = tmp_path / "t.trace.jsonl"
    trace.save(source)
    assert replay_cli(["convert", str(source), "--to", "binary"]) == 0
    twin = tmp_path / "t.trace.bin"
    assert twin.exists()
    back = tmp_path / "back.trace.jsonl"
    assert replay_cli(
        ["convert", str(twin), "--to", "jsonl", "-o", str(back)]) == 0
    assert Trace.load(back).fingerprint() == trace.fingerprint()
    out = capsys.readouterr().out
    assert trace.fingerprint() in out


def test_convert_cli_refuses_to_overwrite_input(trace, tmp_path):
    source = tmp_path / "t.trace.bin"
    trace.save(source)
    assert replay_cli(
        ["convert", str(source), "--to", "binary", "-o", str(source)]) == 1


# ----------------------------------------------------------------------
# Corruption: every fault is a typed error with a byte offset
# ----------------------------------------------------------------------


def binary_bytes(trace, tmp_path, compress=False):
    from repro.replay.format import write_binary

    path = tmp_path / "c.trace.bin"
    write_binary(trace, path, compress=compress)
    return path, path.read_bytes()


def test_truncated_file_raises_with_offset(trace, tmp_path):
    path, blob = binary_bytes(trace, tmp_path)
    # Cut mid-record: past the preamble and the first record header.
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(TraceFormatError) as err:
        Trace.load(path)
    assert err.value.offset >= _PREAMBLE.size
    assert "byte" in str(err.value)


def test_bad_magic_raises_at_offset_zero(trace, tmp_path):
    path, blob = binary_bytes(trace, tmp_path)
    path.write_bytes(b"NOTTRACE" + blob[len(MAGIC):])
    with pytest.raises(TraceFormatError) as err:
        Trace.load(path)
    assert err.value.offset == 0
    assert "magic" in str(err.value)


def test_unknown_format_version_raises(trace, tmp_path):
    path, blob = binary_bytes(trace, tmp_path)
    bad = MAGIC + struct.pack("<HH", 999, 0) + blob[_PREAMBLE.size:]
    path.write_bytes(bad)
    with pytest.raises(TraceFormatError) as err:
        Trace.load(path)
    assert err.value.offset == len(MAGIC)
    assert "version 999" in str(err.value)


def test_length_prefix_overrun_raises_with_offset(trace, tmp_path):
    path, blob = binary_bytes(trace, tmp_path)
    # Inflate the first record's length prefix far past the file end.
    kind, _ = _RECORD.unpack_from(blob, _PREAMBLE.size)
    patched = (blob[:_PREAMBLE.size]
               + _RECORD.pack(kind, 2 ** 31)
               + blob[_PREAMBLE.size + _RECORD.size:])
    path.write_bytes(patched)
    with pytest.raises(TraceFormatError) as err:
        Trace.load(path)
    assert err.value.offset == _PREAMBLE.size
    assert "overruns" in str(err.value)


def test_corrupt_zlib_frame_raises_with_offset(trace, tmp_path):
    path, blob = binary_bytes(trace, tmp_path, compress=True)
    # Flip bytes inside the first frame's deflate stream.
    frame_data_at = _PREAMBLE.size + 8
    patched = bytearray(blob)
    for i in range(frame_data_at + 4, frame_data_at + 12):
        patched[i] ^= 0xFF
    path.write_bytes(bytes(patched))
    with pytest.raises(TraceFormatError):
        Trace.load(path)


def test_truncated_jsonl_still_reports_missing_footer(trace, tmp_path):
    path = tmp_path / "t.trace.jsonl"
    trace.save(path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(ValueError, match="missing header/footer"):
        Trace.load(path)


# ----------------------------------------------------------------------
# Atomic saves: an interrupted write never tears an existing trace
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["t.trace.bin", "t.trace.jsonl"],
                         ids=["binary", "jsonl"])
def test_save_is_atomic_under_interrupted_replace(trace, tmp_path,
                                                  monkeypatch, name):
    import os

    path = tmp_path / name
    trace.save(path)
    original = path.read_bytes()

    def torn_replace(src, dst):
        raise OSError("simulated crash between temp write and rename")

    monkeypatch.setattr(os, "replace", torn_replace)
    with pytest.raises(OSError, match="simulated crash"):
        trace.save(path)
    monkeypatch.undo()
    # The previous complete trace is untouched and no scratch remains.
    assert path.read_bytes() == original
    assert list(tmp_path.glob(f"{name}.tmp*")) == []
    Trace.load(path)  # and it still loads


def test_save_replaces_existing_trace_in_one_step(trace, tmp_path):
    # A successful re-save lands the new bytes and cleans its scratch.
    path = tmp_path / "t.trace.bin"
    trace.save(path)
    trace.save(path)
    assert list(tmp_path.glob("*.tmp*")) == []
    loaded = Trace.load(path)
    assert loaded.fingerprint() == trace.fingerprint()
