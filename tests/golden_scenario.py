"""The committed golden-trace scenario.

One fixed recipe — chaos echo workload, seed 7 — whose recorded trace is
committed at ``tests/golden/echo_chaos_seed7.trace.jsonl``.  CI replays
the committed file against this builder on every push: any change that
shifts event timing, ordering, normalization, or RNG consumption shows
up as a ``ReplayDivergence`` with the first drifted event, instead of as
a silent determinism break.

Regenerate (only when a change *intentionally* alters the stream, and
say so in the commit message)::

    PYTHONPATH=src python -m tests.golden_scenario
"""

from pathlib import Path

from repro import MS, SEC, FaultPlan, record_run

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "echo_chaos_seed7.trace.jsonl"
#: The same recording in the primary binary container; committed next to
#: the JSONL twin and verified against the same fingerprint by CI.
GOLDEN_BINARY_PATH = GOLDEN_PATH.with_name("echo_chaos_seed7.trace.bin")
GOLDEN_SEED = 7
GOLDEN_NAMES = ["client", "server", "debugger"]
GOLDEN_RUN_UNTIL = 4 * SEC
GOLDEN_CHECKPOINT_EVERY = 100 * MS

ECHO_SERVER = "proc echo(x: int) returns int\n  return x\nend"

CHAOS_CLIENT = """
proc main()
  var total: int := 0
  for i := 1 to 12 do
    var r: int := remote svc.echo(i)
    if failed(r) then
      total := total - 100
    else
      total := total + r
    end
  end
  print total
end
"""


def build(cluster):
    server_image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    client_image = cluster.load_program(CHAOS_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "main")


def plan():
    # client=0, server=1 in GOLDEN_NAMES order.
    return (FaultPlan()
            .crash(at=60 * MS, node="server")
            .reboot(at=200 * MS, node="server")
            .partition(at=250 * MS, groups=[[0], [1]], duration=100 * MS)
            .delay(at=360 * MS, duration=400 * MS, extra=5 * MS, jitter=2 * MS)
            .duplicate(at=360 * MS, duration=400 * MS, probability=0.5))


def record():
    return record_run(
        build,
        GOLDEN_NAMES,
        seed=GOLDEN_SEED,
        plan=plan(),
        checkpoint_every=GOLDEN_CHECKPOINT_EVERY,
        run_until=GOLDEN_RUN_UNTIL,
        meta={"golden": True},
    )


if __name__ == "__main__":
    trace = record()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    trace.save(GOLDEN_PATH, format="jsonl")
    trace.save(GOLDEN_BINARY_PATH, format="binary")
    print(f"wrote {GOLDEN_PATH} and {GOLDEN_BINARY_PATH} "
          f"({len(trace.events)} events, fingerprint {trace.fingerprint()})")
