"""Chaos smoke for the fleet: SIGKILL workers mid-campaign, byte-check.

Marked ``chaos`` like the soak — excluded from tier-1, run as a
dedicated CI job — because it sweeps a larger grid under repeated
worker kills to prove the recovery machinery at scale, not just in the
single-kill unit tests.
"""

import pytest

from repro.campaign import build_grid, get_plan, run_campaign

pytestmark = pytest.mark.chaos


def test_fleet_report_survives_worker_massacre():
    """Kill the worker under every fourth cell; the canonical report
    must not move by a byte and every kill must be recovered."""
    plans = [(n, get_plan(n)) for n in ("calm", "crash", "partition")]
    cells = build_grid(["echo"], list(range(8)), plans)
    clean = run_campaign(cells, workers=1, shrink=False)
    kills = [cell.index for cell in cells if cell.index % 4 == 0]
    chaotic = run_campaign(cells, workers=4, shrink=False,
                           chaos_kill_cells=kills, backoff=0.005)
    assert chaotic.canonical_json() == clean.canonical_json()
    assert chaotic.fleet["fleet.worker_deaths"] == len(kills)
    assert chaotic.fleet["fleet.retries"] == len(kills)
    assert chaotic.fleet["fleet.quarantined"] == 0
    assert len(chaotic.errored) == 0


def test_fleet_resume_after_chaos_is_byte_identical(tmp_path):
    """A chaotic, journaled campaign resumed with a different worker
    count and kill schedule still reports identically."""
    journal = tmp_path / "campaign.journal"
    plans = [(n, get_plan(n)) for n in ("calm", "crash")]
    cells = build_grid(["echo"], list(range(6)), plans)
    first = run_campaign(cells, workers=3, shrink=False,
                         journal_path=journal,
                         chaos_kill_cells=[2, 7], backoff=0.005)
    resumed = run_campaign(cells, workers=2, shrink=False,
                           journal_path=journal, resume=True,
                           chaos_kill_cells=[3], backoff=0.005)
    assert resumed.canonical_json() == first.canonical_json()
    assert resumed.fleet["fleet.cells_resumed"] == len(cells)
