"""Unit tests for the Pilgrim REPL command layer."""

from repro import Cluster, Pilgrim
from repro.debugger.repl import PilgrimRepl, parse_duration, parse_value

PROGRAM = """record pair
  a: int
  b: int
end
printop pair show
proc show(p: pair) returns string
  return itoa(p.a) + "/" + itoa(p.b)
end
proc main()
  var i: int := 0
  var p: pair := pair{a: 0, b: 0}
  while true do
    i := i + 1
    p.a := i
    p.b := i * i
    sleep(3000)
  end
end
"""


def make_repl():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(PROGRAM, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    repl = PilgrimRepl(dbg)
    return cluster, repl


def test_parse_duration():
    assert parse_duration("100ms") == 100_000
    assert parse_duration("2s") == 2_000_000
    assert parse_duration("500us") == 500
    assert parse_duration("1234") == 1234


def test_parse_value():
    assert parse_value("42") == 42
    assert parse_value("true") is True
    assert parse_value("false") is False
    assert parse_value('"hello"') == "hello"


def test_unknown_command():
    _cluster, repl = make_repl()
    repl.execute("frobnicate")
    assert any("unknown command" in line for line in repl.lines)


def test_connect_ps_and_disconnect():
    _cluster, repl = make_repl()
    repl.run_script(["connect app", "ps app", "disconnect"])
    text = "\n".join(repl.lines)
    assert "connected to node 0 (app)" in text
    assert "main" in text
    assert "pilgrim.agent" in text
    assert "[halt-exempt]" in text
    assert "disconnected" in text


def test_breakpoint_session_flow():
    _cluster, repl = make_repl()
    repl.run_script(
        [
            "connect app",
            "break app app 12",  # i := i + 1
            "wait",
            "bt app 3",
            "print app 3 p",
            "set app 3 i 100",
            "step app 3",
            "continue app",
            "wait",
            "print app 3 i",
            "clear 1",
            "continue app",
            "time",
            "disconnect",
        ]
    )
    text = "\n".join(repl.lines)
    assert "breakpoint #1 at app.main line 12" in text
    assert "* breakpoint: node 0 pid 3" in text
    assert "app.main line 12  locals:" in text
    assert "p = " in text and "/" in text  # print op output a/b
    assert "i := 100" in text
    assert "stepped: main" in text
    # After set i := 100 and resume, the next hit shows 101.
    assert "i = 101" in text
    assert "cleared breakpoint #1" in text
    assert "interruption log total" in text


def test_error_reported_not_raised():
    _cluster, repl = make_repl()
    repl.run_script(["connect app", "break app nosuchmodule 3"])
    assert any(line.startswith("!") for line in repl.lines)


def test_bad_arguments_reported():
    _cluster, repl = make_repl()
    repl.execute("break app")  # missing args
    assert any(line.startswith("?bad arguments") for line in repl.lines)


def test_help_and_quit():
    _cluster, repl = make_repl()
    repl.run_script(["help", "quit", "ps app"])  # ps never runs after quit
    text = "\n".join(repl.lines)
    assert "connect app server" in text
    assert repl.done
    assert "pilgrim.agent" not in text  # ps output never appeared


def test_check_and_contracts_commands():
    cluster, repl = make_repl()
    repl.execute("contracts")
    assert any("single_leader" in line for line in repl.lines)
    # check needs a loaded trace: record a slice, then fold over it.
    repl.run_script(["record", "run 50ms", "record stop", "check"])
    assert any(line.strip().startswith("OK") for line in repl.lines)
    repl.lines.clear()
    repl.execute("check clock_monotonicity")
    assert any("clock_monotonicity" in line and "pass" in line
               for line in repl.lines)
