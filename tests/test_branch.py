"""Branching time travel: fork-and-perturb, branch trees, event diffs."""

import pytest

from repro import MS, SEC, Cluster, FaultPlan, Pilgrim, record_run
from repro.debugger.repl import PilgrimRepl
from repro.replay import (
    BranchError,
    BranchInfo,
    BranchTree,
    Perturbation,
    ReplayUnsupported,
    TraceSession,
    detect_races,
    diff_branches,
    fork_trace,
)
from repro.replay.branch import branch_key, parse_perturbation, resolve_builder
from repro.replay.races import _delivery_orders

ECHO_SERVER = "proc echo(x: int) returns int\n  return x\nend"

ONE_CALL = """
proc main()
  var r: int := remote svc.echo(7)
  print r
end
"""

NAMES = ["alice", "bob", "server", "debugger"]


def build_two_clients(cluster):
    """Two clients racing one echo server (the time-travel example)."""
    image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", image, {"echo": "echo"})
    for name in ("alice", "bob"):
        cluster.spawn_vm(name, cluster.load_program(ONE_CALL, name), "main")


def jitter_plan():
    return FaultPlan().delay(at=0, duration=1 * SEC, extra=2 * MS,
                             jitter=6 * MS)


def record_parent(seed=1):
    return record_run(build_two_clients, NAMES, seed=seed, plan=jitter_plan(),
                      run_until=2 * SEC, checkpoint_every=20 * MS)


@pytest.fixture(scope="module")
def parent():
    return record_parent(seed=1)


def crash_pert(at=300 * MS, node="server"):
    return Perturbation.from_plan(FaultPlan().crash(at=at, node=node),
                                  kind="crash")


# ----------------------------------------------------------------------
# Out-of-place forking (the acceptance bar)
# ----------------------------------------------------------------------


def test_fork_never_touches_the_parent(parent):
    before_fp = parent.fingerprint()
    before_lines = list(parent.lines())
    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(crash_pert())
    assert parent.fingerprint() == before_fp
    assert parent.lines() == before_lines
    assert branch.trace is not parent
    assert branch.trace.header["meta"]["branch_of"] == before_fp
    assert branch.trace.fingerprint() != before_fp


def test_fork_prefix_is_byte_identical_before_the_delta(parent):
    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(crash_pert(at=300 * MS))
    child_lines = branch.trace.lines()
    parent_lines = parent.lines()
    boundary = 0
    running = 0
    for line, event in zip(parent_lines, parent.events):
        running = max(running, event.time)
        if running >= 300 * MS:
            break
        boundary += 1
    assert boundary > 0
    assert child_lines[:boundary] == parent_lines[:boundary]


def test_fork_determinism_same_spec_same_bytes(parent, tmp_path):
    """Two independent forks of the same spec agree byte for byte."""
    pert = crash_pert()
    a = BranchTree(parent, build_two_clients).fork(pert)
    b = BranchTree(parent, build_two_clients).fork(pert)
    assert a.id == b.id
    assert a.trace.fingerprint() == b.trace.fingerprint()
    assert a.trace.lines() == b.trace.lines()
    a.trace.save(tmp_path / "a.trace.bin")
    b.trace.save(tmp_path / "b.trace.bin")
    assert (tmp_path / "a.trace.bin").read_bytes() == \
        (tmp_path / "b.trace.bin").read_bytes()


def test_fork_dedupes_identical_specs(parent):
    tree = BranchTree(parent, build_two_clients)
    first = tree.fork(crash_pert())
    again = tree.fork(crash_pert())
    assert again is first
    assert len(tree) == 2  # root + one branch


def test_fork_inline_matches_process_mode(parent):
    pert = crash_pert()
    via_process = fork_trace(parent, build_two_clients, 0, pert,
                             mode="process")
    via_inline = fork_trace(parent, build_two_clients, 0, pert, mode="inline")
    assert via_process.fingerprint() == via_inline.fingerprint()


def test_fork_from_branch_builds_a_lineage(parent):
    tree = BranchTree(parent, build_two_clients)
    child = tree.fork(crash_pert(at=300 * MS))
    grand = tree.fork(crash_pert(at=500 * MS, node="alice"),
                      parent=child.id)
    assert grand.parent == child.id
    lineage = tree.lineage(grand.id)
    assert [b.id for b in lineage] == [tree.root.id, child.id, grand.id]
    injected = [e for e in grand.trace.events if e.type == "FaultInjected"]
    # The grandchild carries the jitter window, the crash, and its own.
    assert len(injected) == 3


# ----------------------------------------------------------------------
# Perturbations
# ----------------------------------------------------------------------


def test_perturbation_roundtrips_through_dict():
    pert = crash_pert()
    again = Perturbation.from_dict(pert.to_dict())
    assert again == pert
    assert again.canonical() == pert.canonical()


def test_perturbation_before_fork_time_is_rejected(parent):
    tree = BranchTree(parent, build_two_clients)
    late_checkpoint = len(parent.checkpoints) - 1
    assert parent.checkpoints[late_checkpoint].time > 0
    with pytest.raises(BranchError, match="before the fork checkpoint"):
        tree.fork(crash_pert(at=0), checkpoint=late_checkpoint)


def test_fork_checkpoint_out_of_range(parent):
    tree = BranchTree(parent, build_two_clients)
    with pytest.raises(BranchError, match="out of range"):
        tree.fork(crash_pert(), checkpoint=99)


def test_parse_perturbation_builds_fault_actions():
    pert = parse_perturbation("crash", ["node=server", "at=300"])
    assert pert.kind == "crash"
    assert len(pert.actions) == 1
    action = pert.actions[0]
    assert action.kind == "crash" and action.at == 300
    with pytest.raises(BranchError):
        parse_perturbation("meteor", ["at=0"])


def test_branch_key_is_content_addressed(parent):
    pert = crash_pert()
    key = branch_key(parent.fingerprint(), 0, pert)
    assert key == branch_key(parent.fingerprint(), 0, crash_pert())
    assert key != branch_key(parent.fingerprint(), 1, pert)
    assert key != branch_key(parent.fingerprint(), 0, pert, run_until=1)


def test_resolve_builder_accepts_scenario_and_dotted_refs():
    assert callable(resolve_builder("scenario:echo"))
    ref = f"{__name__}:build_two_clients"
    assert resolve_builder(ref) is build_two_clients
    assert resolve_builder(build_two_clients) is build_two_clients
    with pytest.raises(BranchError):
        resolve_builder("scenario:no_such_scenario")


# ----------------------------------------------------------------------
# Race flipping
# ----------------------------------------------------------------------


def test_flip_race_inverts_the_delivery_order(parent):
    other = record_parent(seed=5)
    races = detect_races(parent, other)
    assert races, "seeds 1 and 5 must exhibit the known echo race"
    race = races[0]
    pert = Perturbation.flip_race(parent, race)
    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(pert)
    orders = _delivery_orders(branch.trace)[race.dst]
    assert orders.index(race.second) < orders.index(race.first)
    diff = tree.diff("root", branch.id)
    assert diff.first_divergence is not None
    assert "FaultInjected" in diff.first_divergence["b"]


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------


def test_diff_identical_traces(parent):
    diff = diff_branches(parent, parent)
    assert diff.identical
    assert diff.first_divergence is None
    assert diff.per_node == {}


def test_diff_reports_first_divergence_and_per_node_times(parent):
    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(crash_pert(at=300 * MS))
    diff = tree.diff("root", branch.id)
    assert not diff.identical
    assert diff.first_divergence["index"] >= 1
    assert diff.first_divergence["time_b"] is not None
    server = 2  # NAMES order: alice=0, bob=1, server=2
    assert any(int(node) == server for node in diff.per_node)


def test_diff_is_symmetric(parent):
    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(crash_pert())
    ab = tree.diff("root", branch.id)
    ba = tree.diff(branch.id, "root")
    assert ab.identical == ba.identical
    assert ab.first_divergence["index"] == ba.first_divergence["index"]
    assert ab.first_divergence["a"] == ba.first_divergence["b"]
    assert ab.events_a == ba.events_b and ab.events_b == ba.events_a
    assert ab.halted_a == ba.halted_b
    for counter, (in_a, in_b) in ab.count_delta.items():
        assert ba.count_delta[counter] == [in_b, in_a]


def test_branch_ref_prefix_resolution(parent):
    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(crash_pert())
    assert tree.get(branch.id[:8]) is branch
    assert tree.get("root") is tree.root
    assert tree.get(None) is tree.root
    with pytest.raises(BranchError, match="no branch"):
        tree.get("ffffffff")


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------


def test_manual_traces_are_not_forkable():
    cluster = Cluster(names=["client", "server", "debugger"], seed=5)
    image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", image, {"echo": "echo"})
    cluster.spawn_vm("client", cluster.load_program(ONE_CALL, "client"),
                     "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client", "server")
    dbg.start_recording()
    dbg.run_for(300 * MS)
    trace = dbg.stop_recording()
    tree = BranchTree(trace, build_two_clients)
    with pytest.raises(ReplayUnsupported):
        tree.fork(crash_pert(at=100 * MS))
    # run_until overrides how far the child runs, never forkability.
    with pytest.raises(ReplayUnsupported):
        tree.fork(crash_pert(at=100 * MS), run_until=SEC)


def test_fork_without_builder_is_a_typed_error(parent):
    tree = BranchTree(parent)
    with pytest.raises(BranchError, match="builder"):
        tree.fork(crash_pert())


# ----------------------------------------------------------------------
# Debugger surfaces
# ----------------------------------------------------------------------


def test_trace_session_fork_returns_wire_records(parent):
    session = TraceSession(parent, builder=build_two_clients)
    info = session.fork(crash_pert())
    assert isinstance(info, BranchInfo)
    assert info.events == info.events  # frozen record, wire-shaped
    listed = session.branches()
    assert [b.id for b in listed[1:]] == [info.id]
    diff = session.diff_branches("root", info.id[:8])
    assert not diff.identical
    child = session.branch_session(info.id[:8])
    assert child.at(0).time == 0


def test_repl_fork_branches_diff_commands(parent):
    session = TraceSession(parent, builder=build_two_clients)
    repl = PilgrimRepl(session)
    repl.run_script(["fork 0 crash node=server at=300ms", "branches"])
    assert any("forked branch" in line for line in repl.lines)
    info = session.branches()[1]
    repl.run_script([f"diff root {info.id[:8]}"])
    assert any("first divergence" in line for line in repl.lines)


# ----------------------------------------------------------------------
# Contracts: invariant-level diffs and the races -> contracts bridge
# ----------------------------------------------------------------------


def test_diff_carries_contract_verdicts(parent):
    from repro.contracts import UNIVERSAL_SET

    tree = BranchTree(parent, build_two_clients)
    branch = tree.fork(crash_pert())
    diff = tree.diff("root", branch.id)
    assert set(diff.contracts_a) == set(UNIVERSAL_SET.names())
    assert set(diff.contracts_b) == set(UNIVERSAL_SET.names())
    # A mid-run crash of the echo server breaks no safety contract, so
    # the invariant-level diff is empty even though the streams diverge.
    assert diff.first_contract_divergence is None


def test_diff_respects_a_custom_contract_set(parent):
    from repro.contracts import resolve_contracts

    tree = BranchTree(parent, build_two_clients,
                      contracts=resolve_contracts("clock_monotonicity"))
    branch = tree.fork(crash_pert())
    diff = tree.diff("root", branch.id)
    assert list(diff.contracts_a) == ["clock_monotonicity"]


def test_classify_races_tags_benign_inversions(parent):
    from repro.replay.branch import classify_races

    other = record_parent(seed=5)
    races = detect_races(parent, other)
    assert races and races[0].harmful is None
    tree = BranchTree(parent, build_two_clients)
    classified = classify_races(tree, races[:1], mode="inline")
    assert len(classified) == 1
    # Flipping the echo race reorders deliveries without breaking any
    # universal contract: the bridge judges it benign, not unclassified.
    assert classified[0].harmful is False
    assert "benign" in repr(classified[0])
    assert races[0].harmful is None  # input records are never mutated


def test_classify_races_leaves_unexecutable_flips_unclassified(parent):
    from repro.replay.branch import classify_races
    from repro.replay.races import MessageRace

    ghost = MessageRace(dst=0, first=(9, 9, "ghost", 0),
                        second=(9, 9, "ghost", 1), pos_a=(0, 1), pos_b=(1, 0))
    tree = BranchTree(parent, build_two_clients)
    classified = classify_races(tree, [ghost], mode="inline")
    assert classified[0].harmful is None
    assert "harmful" not in repr(classified[0])
    assert "benign" not in repr(classified[0])
