"""The fault layer: nemesis schedules, link shaping, reboot, recovery."""

import pytest

from repro import (
    MS,
    SEC,
    AgentError,
    Cluster,
    FaultPlan,
    Nemesis,
    Pilgrim,
    UnreachableNodeError,
)
from repro.obs import EventStreamRecorder

SPIN = "proc main()\n  while true do\n    sleep(5000)\n  end\nend"

ECHO_SERVER = "proc echo(x: int) returns int\n  return x\nend"

ONE_CALL_CLIENT = """
proc main()
  var r: int := remote svc.echo(7)
  if failed(r) then
    print "failed"
  else
    print r
  end
end
"""


# ----------------------------------------------------------------------
# Crash residue (the precondition for clean reboot)
# ----------------------------------------------------------------------


def test_crash_leaves_no_node_residue():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    cluster.spawn_vm("app", image, "main")
    cluster.run_for(20 * MS)
    node = cluster.node("app")
    node.crash()
    # Every pending node-tagged event is cancelled, except in-flight ring
    # deliveries (which live on the wire and resolve as drops).
    handles = cluster.world.kernel.node_handles(node.node_id)
    assert all(h.cancelled or h.survives_crash for h in handles)
    assert node.station._ports == {}
    assert node.station.tx_free_at == 0
    # The corpse stays silent.
    cluster.run_for(200 * MS)
    assert not any(p.is_live() for p in node.supervisor.processes.values())


def test_lazy_crash_compaction_is_behavior_identical():
    """cancel_node_events compacts lazily (cancelled entries may linger
    in the index heaps); the observable scheduling state — window_for,
    peek_next_time — must exactly match a naive recomputation over the
    live events, before and after further queue churn."""
    from repro.sim.units import FOREVER
    from repro.sim.world import World

    def naive_window(world, node, lookahead):
        live = [h for h in world.kernel.iter_handles() if not h.cancelled]
        own = min((h.time for h in live if h.node == node), default=FOREVER)
        glob = min((h.time for h in live if h.node is None), default=FOREVER)
        window = min(own, glob)
        if live:
            window = min(window, min(h.time for h in live) + lookahead)
        return window

    world = World(seed=0)
    nothing = lambda: None
    for t in range(10, 100, 10):
        world.schedule_at(t, nothing, node=0)
        world.schedule_at(t + 1, nothing, node=1)
    world.schedule_at(55, nothing)  # global
    survivor = world.schedule_at(70, nothing, node=1, survives_crash=True)

    cancelled = world.cancel_node_events(1)
    assert cancelled == 9  # every node-1 event except the survivor
    assert not survivor.cancelled
    # Window/peek agree with the naive fold over live events only.
    for node in (0, 1, 2):
        assert world.window_for(node, 3_500) == naive_window(world, node, 3_500)
    assert world.peek_next_time() == 10
    # The survivor still bounds node 1's own window.
    assert world.window_for(1, FOREVER) == min(55, 70)
    # Churn the queue: caches must invalidate, identity must hold.
    world.schedule_at(5, nothing, node=2)
    for node in (0, 1, 2):
        assert world.window_for(node, 3_500) == naive_window(world, node, 3_500)
    assert world.peek_next_time() == 5
    # A second crash drops the survivor's heap entirely once it fires.
    survivor.cancel()
    assert world.cancel_node_events(1) == 0
    assert not world.kernel.has_node_index(1)


def test_crash_then_reboot_via_nemesis_counts_in_metrics():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    cluster.spawn_vm("app", image, "main")
    plan = FaultPlan().crash(at=30 * MS, node="app").reboot(at=80 * MS, node="app")
    nemesis = Nemesis(cluster, plan)
    cluster.run_for(200 * MS)
    assert nemesis.faults_fired == 2
    node = cluster.node("app")
    assert node.epoch == 1
    metrics = cluster.world.metrics
    assert metrics.labeled("node.reboots").get(node.node_id) == 1
    assert metrics.counter("faults.injected").value == 1  # the crash


# ----------------------------------------------------------------------
# Reboot semantics
# ----------------------------------------------------------------------


def test_reboot_rebuilds_node_and_reregisters_services():
    cluster = Cluster(names=["client", "server", "debugger"])
    server_image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    client_image = cluster.load_program(ONE_CALL_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "main")
    cluster.run(until=2 * SEC)
    assert client_image.console == ["7"]

    server = cluster.node("server")
    old_rpc = server.rpc
    old_supervisor = server.supervisor
    old_skew = server.clock.skew
    server.crash()
    epoch = server.reboot()

    assert epoch == 1 and server.epoch == 1 and not server.crashed
    assert server.supervisor is not old_supervisor
    assert server.rpc is not None and server.rpc is not old_rpc
    # Exported services carried over and re-registered identically.
    assert "svc" in server.rpc._services
    assert cluster.registry.lookup("svc") == server.node_id
    # Logical-clock state reset (delta gone, configured skew kept).
    assert server.clock.delta == 0 and server.clock.skew == old_skew
    # The fresh boot serves calls again.
    cluster.spawn_vm("client", client_image, "main")
    cluster.run(until=cluster.world.now + 2 * SEC)
    assert client_image.console == ["7", "7"]


def test_stale_retransmit_rejected_after_server_reboot():
    """Exactly-once must not double-execute across a reboot: the dedup
    table dies with the crash, so a pre-reboot retransmit is refused and
    the client sees a failure (at-most-once degradation)."""
    cluster = Cluster(names=["client", "server", "debugger"])
    executed = []

    def slow_echo(ctx, x):
        executed.append(x)
        from repro.mayflower.syscalls import Cpu
        yield Cpu(100 * MS)  # long enough to die mid-execution
        return x

    cluster.rpc("server").export_native("svc", {"echo": slow_echo})
    client_image = cluster.load_program(ONE_CALL_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "main")
    plan = (FaultPlan()
            .crash(at=50 * MS, node="server")
            .reboot(at=130 * MS, node="server"))
    Nemesis(cluster, plan)
    cluster.run(until=3 * SEC)

    assert client_image.console == ["failed"]
    assert executed == [7]  # executed at most once, never replayed
    assert cluster.world.metrics.counter("rpc.stale_rejected").value >= 1


# ----------------------------------------------------------------------
# Partition / heal
# ----------------------------------------------------------------------


def test_partition_nacks_then_heal_completes_exactly_once():
    cluster = Cluster(names=["client", "server", "debugger"])
    executed = []

    def echo(ctx, x):
        executed.append(x)
        return x

    cluster.rpc("server").export_native("svc", {"echo": echo})
    client_image = cluster.load_program(ONE_CALL_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "main")
    client_id = cluster.node("client").node_id
    server_id = cluster.node("server").node_id
    # Cut client|server from t=1ms for 150 ms: well inside the
    # exactly-once retransmission budget (8 x 40 ms).
    plan = FaultPlan().partition(
        at=1 * MS, groups=[[client_id], [server_id]], duration=150 * MS
    )
    Nemesis(cluster, plan)
    cluster.run(until=3 * SEC)

    assert client_image.console == ["7"]
    assert executed == [7]
    # The cut was hardware-visible: transmissions into it were NACKed.
    assert cluster.ring.total_nacked > 0
    assert cluster.world.metrics.counter("faults.injected").value == 1
    assert cluster.world.metrics.counter("faults.healed").value == 1


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def _chaos_run(seed: int):
    cluster = Cluster(names=["client", "server", "debugger"], seed=seed)
    recorder = EventStreamRecorder(cluster.world.bus)
    server_image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    client_image = cluster.load_program(
        """
proc main()
  var total: int := 0
  for i := 1 to 12 do
    var r: int := remote svc.echo(i)
    if failed(r) then
      total := total - 100
    else
      total := total + r
    end
  end
  print total
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    client_id = cluster.node("client").node_id
    server_id = cluster.node("server").node_id
    plan = (FaultPlan()
            .crash(at=60 * MS, node="server")
            .reboot(at=200 * MS, node="server")
            .partition(at=250 * MS, groups=[[client_id], [server_id]],
                       duration=100 * MS)
            .delay(at=360 * MS, duration=400 * MS, extra=5 * MS, jitter=2 * MS)
            .duplicate(at=360 * MS, duration=400 * MS, probability=0.5))
    Nemesis(cluster, plan)
    cluster.run(until=4 * SEC)
    return recorder.lines(), list(client_image.console)


def test_seeded_nemesis_runs_are_byte_identical():
    lines_a, console_a = _chaos_run(seed=42)
    lines_b, console_b = _chaos_run(seed=42)
    assert console_a == console_b
    assert lines_a == lines_b


def test_different_seeds_diverge():
    lines_a, _ = _chaos_run(seed=42)
    lines_b, _ = _chaos_run(seed=43)
    # Jitter and probabilistic duplication draw from world.rng, so a
    # different seed must perturb the stream.
    assert lines_a != lines_b


# ----------------------------------------------------------------------
# Plan serialization (traces embed the plan in their header)
# ----------------------------------------------------------------------


def test_fault_plan_dict_round_trip():
    plan = (FaultPlan()
            .crash(at=60 * MS, node="server")
            .reboot(at=200 * MS, node="server")
            .partition(at=250 * MS, groups=[[0], [1, 2]], duration=100 * MS)
            .delay(at=360 * MS, duration=400 * MS, extra=5 * MS, jitter=2 * MS)
            .duplicate(at=360 * MS, duration=400 * MS, probability=0.5)
            .loss(at=500 * MS, duration=50 * MS, src=0, dst=1, probability=0.25))
    data = plan.to_dict()
    restored = FaultPlan.from_dict(data)
    assert restored.actions == plan.actions
    # Stable through JSON (what the trace file actually stores).
    import json
    assert FaultPlan.from_dict(json.loads(json.dumps(data))).actions == plan.actions


def test_fault_plan_from_dict_defaults():
    data = {"actions": [{"at": 10, "kind": "crash", "node": "app"}]}
    action = FaultPlan.from_dict(data).actions[0]
    assert action.probability == 1.0
    assert action.extra == 0 and action.jitter == 0


# ----------------------------------------------------------------------
# Debugger-side recovery
# ----------------------------------------------------------------------


def test_reboot_invalidates_session_and_reattach_recovers():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    app_id = cluster.node("app").node_id
    assert dbg.node_epochs[app_id] == 0
    assert dbg.processes("app")  # session works

    cluster.node("app").reboot()
    # The fresh agent knows nothing of the session: stale id rejected.
    with pytest.raises(AgentError, match="bad or stale"):
        dbg.processes("app")
    assert dbg.reachability[app_id] == "up"  # a rejection proves liveness

    info = dbg.reattach("app")
    assert info["epoch"] == 1
    assert dbg.node_epochs[app_id] == 1
    names = [p["name"] for p in dbg.processes("app")]
    assert "pilgrim.agent" in names  # fresh boot, debuggable again


def test_unreachable_node_error_carries_diagnosis():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    cluster.node("app").crash()
    with pytest.raises(UnreachableNodeError) as excinfo:
        dbg.processes("app")
    exc = excinfo.value
    assert exc.node == "app"
    assert exc.address == cluster.node("app").node_id
    assert exc.state == "down"
    retries = cluster.params.debugger_max_retries
    assert len(exc.attempts) == retries + 1
    # Exponential backoff was recorded per attempt.
    backoffs = [a["backoff"] for a in exc.attempts]
    assert backoffs[1] == 2 * backoffs[0]
    assert dbg.reachability[exc.address] == "down"


def test_survey_and_halt_degrade_around_dead_node():
    cluster = Cluster(names=["a", "b", "debugger"])
    for name in ("a", "b"):
        image = cluster.load_program(SPIN, name)
        cluster.spawn_vm(name, image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("a", "b")
    b_id = cluster.node("b").node_id
    cluster.node("b").crash()

    survey = dbg.all_processes()
    assert cluster.node("a").node_id in survey["nodes"]
    assert [u["address"] for u in survey["unreachable"]] == [b_id]

    # halt_all skips the corpse and halts via the live node.
    dbg.halt_all()
    assert cluster.node("a").agent.halted
    dbg.resume("a")
