"""The shared contract every ``repro.net`` transport backend must honor.

One parametrized suite runs against every registered topology: delivery
and per-destination ordering, the hardware-NACK vs silent-loss taxonomy,
shaper decision points, crash/`survives_crash` semantics, and station
detach.  Fabric-*specific* timing (the ring's cross-destination
staircase vs the mesh's parallel links) and mesh replay byte-identity
get their own tests below the shared block.
"""

import pytest

from repro import MS, Cluster, FaultPlan, record_run, replay_trace
from repro.faults.plan import Nemesis
from repro.faults.shaper import DELAY, FaultRule, LinkShaper
from repro.mayflower import Node
from repro.net import (
    TOPOLOGIES,
    MeshTransport,
    PacketTracer,
    RingTransport,
    make_transport,
)
from repro.params import Params
from repro.sim import World

TOPOLOGY_NAMES = sorted(TOPOLOGIES)


def make_net(topology, n_nodes=3, seed=0, **params):
    """A bare world + transport + attached nodes (no cluster glue)."""
    world = World(seed=seed)
    p = Params(**params)
    net = make_transport(topology, world, p)
    nodes = [Node(i, f"n{i}", world, p) for i in range(n_nodes)]
    for node in nodes:
        net.attach(node)
    return world, net, nodes


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_maps_names_to_backends():
    world = World()
    assert isinstance(make_transport("ring", world), RingTransport)
    assert isinstance(make_transport("mesh", world), MeshTransport)


def test_unknown_topology_is_a_helpful_error():
    with pytest.raises(KeyError, match="torus.*known.*mesh.*ring"):
        make_transport("torus", World())


# ----------------------------------------------------------------------
# The shared contract (every topology)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_basic_delivery_one_block_latency(topology):
    world, net, nodes = make_net(topology)
    arrivals = []
    nodes[1].station.register_port("p", lambda pkt: arrivals.append((world.now, pkt)))
    nodes[0].station.send(1, "p", {"x": 1})
    world.run()
    assert [(t, pkt.payload) for t, pkt in arrivals] == [(3_500, {"x": 1})]


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_same_destination_sends_stay_serialized(topology):
    """Per-destination ordering is what the RPC protocols lean on: a
    burst to one peer lands spaced by the transmitter occupancy on every
    fabric (the ring's single transmitter, the mesh's per-link one)."""
    world, net, nodes = make_net(topology)
    arrivals = []
    nodes[1].station.register_port(
        "p", lambda pkt: arrivals.append((world.now, pkt.payload))
    )
    nodes[0].station.send(1, "p", "first")
    nodes[0].station.send(1, "p", "second")
    world.run()
    assert arrivals == [(3_500, "first"), (7_000, "second")]


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_crashed_destination_is_a_hardware_nack(topology):
    world, net, nodes = make_net(topology)
    nodes[1].crash()
    nacks = []
    nodes[0].station.send(1, "p", None, on_nack=lambda pkt: nacks.append(world.now))
    world.run()
    assert nacks == [3_500]  # known by end of transmission
    assert net.total_nacked == 1 and net.total_delivered == 0


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_nack_filters_force_hardware_nack(topology):
    world, net, nodes = make_net(topology)
    net.nack_filters.append(lambda pkt: pkt.port == "unlucky")
    nacks, arrivals = [], []
    nodes[1].station.register_port("ok", lambda pkt: arrivals.append(pkt))
    nodes[0].station.send(1, "unlucky", None, on_nack=lambda pkt: nacks.append(pkt))
    nodes[0].station.send(1, "ok", None)
    world.run()
    assert len(nacks) == 1 and len(arrivals) == 1


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_silent_loss_is_invisible_to_the_sender(topology):
    """drop_filters model software loss *after* interface receipt: the
    tracer sees sent+dropped, and on_nack must never fire (paper §4.1)."""
    world, net, nodes = make_net(topology)
    tracer = PacketTracer(net)
    net.drop_filters.append(lambda pkt: True)
    nacks = []
    packet = nodes[0].station.send(
        1, "p", None, on_nack=lambda pkt: nacks.append(pkt)
    )
    world.run()
    assert nacks == []
    assert tracer.events_for(packet.packet_id) == ["sent", "dropped"]
    assert net.total_dropped == 1 and net.total_nacked == 0


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_shaper_partition_nacks_across_the_cut(topology):
    world, net, nodes = make_net(topology)
    shaper = LinkShaper(net)
    shaper.partition([[0], [1, 2]])
    nacks, arrivals = [], []
    nodes[1].station.register_port("p", lambda pkt: arrivals.append(pkt))
    nodes[2].station.register_port("p", lambda pkt: arrivals.append(pkt))
    nodes[0].station.send(1, "p", None, on_nack=lambda pkt: nacks.append(pkt))
    nodes[2].station.send(1, "p", None)  # same side of the cut
    world.run()
    assert len(nacks) == 1 and len(arrivals) == 1
    shaper.heal_partition()
    nodes[0].station.send(1, "p", None, on_nack=lambda pkt: nacks.append(pkt))
    world.run()
    assert len(nacks) == 1 and len(arrivals) == 2


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_shaper_delay_rule_shifts_delivery(topology):
    world, net, nodes = make_net(topology)
    shaper = LinkShaper(net)
    rule = shaper.add_rule(FaultRule(DELAY, extra=2 * MS))
    arrivals = []
    nodes[1].station.register_port("p", lambda pkt: arrivals.append(world.now))
    nodes[0].station.send(1, "p", None)
    world.run()
    shaper.remove_rule(rule)
    nodes[0].station.send(1, "p", None)
    world.run()
    assert arrivals[0] - 3_500 == 2 * MS  # delayed
    assert arrivals[1] > arrivals[0]      # second send, undelayed path


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_in_flight_delivery_survives_destination_crash(topology):
    """A packet on the wire is not retracted by the destination crashing
    (survives_crash); it resolves as a silent interface-level drop."""
    world, net, nodes = make_net(topology)
    tracer = PacketTracer(net)
    packet = nodes[0].station.send(1, "p", None)
    world.schedule(1 * MS, nodes[1].crash)
    world.run()
    assert tracer.events_for(packet.packet_id) == ["sent", "dropped"]
    assert net.total_nacked == 0  # the sender saw a clean transmission


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_detached_station_nacks_new_sends(topology):
    world, net, nodes = make_net(topology)
    station = net.detach(nodes[1])
    assert station is not None and nodes[1].station is None
    assert net.detach(nodes[1]) is None  # idempotent
    nacks = []
    nodes[0].station.send(1, "p", None, on_nack=lambda pkt: nacks.append(pkt))
    world.run()
    assert len(nacks) == 1


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
def test_link_down_cuts_one_direction_only(topology):
    """The link_down fault kind NACKs src->dst while dst->src still
    flows, and heals when its window closes — on every fabric."""
    cluster = Cluster(names=["a", "b"], topology=topology)
    plan = FaultPlan().link_down(at=1 * MS, src=0, dst=1, duration=20 * MS)
    Nemesis(cluster, plan)
    nacks, arrivals = [], []
    cluster.node("a").station.register_port("p", lambda pkt: arrivals.append(pkt))
    cluster.node("b").station.register_port("p", lambda pkt: arrivals.append(pkt))
    cluster.run(until=2 * MS)
    cluster.node("a").station.send(1, "p", None,
                                   on_nack=lambda pkt: nacks.append(pkt))
    cluster.node("b").station.send(0, "p", None,
                                   on_nack=lambda pkt: nacks.append(pkt))
    cluster.run(until=22 * MS)  # past the window close at 21 ms
    assert len(nacks) == 1 and len(arrivals) == 1  # only a->b cut
    cluster.node("a").station.send(1, "p", None,
                                   on_nack=lambda pkt: nacks.append(pkt))
    cluster.run(until=40 * MS)
    assert len(nacks) == 1 and len(arrivals) == 2  # healed


# ----------------------------------------------------------------------
# Where the fabrics differ: cross-destination parallelism
# ----------------------------------------------------------------------


def _broadcast_times(topology, n_nodes=5):
    world, net, nodes = make_net(topology, n_nodes=n_nodes)
    arrivals = []
    for i in range(1, n_nodes):
        nodes[i].station.register_port(
            "halt", lambda pkt, i=i: arrivals.append((world.now, i))
        )
    for i in range(1, n_nodes):
        nodes[0].station.send(i, "halt", None)
    world.run()
    return [t for t, _ in sorted(arrivals)]


def test_ring_broadcast_is_a_staircase():
    assert _broadcast_times("ring") == [3_500, 7_000, 10_500, 14_000]


def test_mesh_broadcast_is_parallel():
    assert _broadcast_times("mesh") == [3_500, 3_500, 3_500, 3_500]


def test_mesh_per_link_latency_override():
    world, net, nodes = make_net("mesh")
    net.set_link_latency(0, 1, 10 * MS)
    arrivals = []
    nodes[1].station.register_port("p", lambda pkt: arrivals.append(world.now))
    nodes[2].station.register_port("p", lambda pkt: arrivals.append(world.now))
    nodes[0].station.send(1, "p", None)   # slow WAN hop
    nodes[0].station.send(2, "p", None)   # default link
    world.run()
    assert sorted(arrivals) == [3_500, 10 * MS]
    with pytest.raises(ValueError, match="must be >= 0"):
        net.set_link_latency(0, 1, -1)


# ----------------------------------------------------------------------
# Mesh recordings replay byte-identically, topology pinned in the header
# ----------------------------------------------------------------------

ECHO_SERVER = "proc echo(x: int) returns int\n  return x\nend"

ECHO_CLIENT = """
proc main()
  var total: int := 0
  for i := 1 to 6 do
    var r: int := remote svc.echo(i)
    if failed(r) then
      total := total - 100
    else
      total := total + r
    end
  end
  print total
end
"""


def _echo_build(cluster):
    server_image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    client_image = cluster.load_program(ECHO_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "main")


def test_mesh_recording_replays_byte_identically():
    plan = (FaultPlan()
            .crash(at=60 * MS, node="server")
            .reboot(at=150 * MS, node="server")
            .delay(at=200 * MS, duration=200 * MS, extra=4 * MS, jitter=2 * MS))
    trace = record_run(
        _echo_build, ["client", "server"], seed=7, plan=plan,
        checkpoint_every=100 * MS, run_until=1_000 * MS, topology="mesh",
    )
    assert trace.header["topology"] == "mesh"
    assert trace.topology == "mesh"
    report = replay_trace(trace, _echo_build)
    assert report.identical and report.events == len(trace.events)


_FAN_CLIENT = """
proc a()
  var r: int := remote svca.echo(1)
  print r
end
proc b()
  var r: int := remote svcb.echo(2)
  print r
end
"""


def _fan_build(cluster):
    """Two client processes fanning out to two servers concurrently —
    the shape where the ring's single transmitter shows (two-party
    traffic is deliberately timing-identical across the fabrics)."""
    for name, svc in (("s1", "svca"), ("s2", "svcb")):
        image = cluster.load_program(ECHO_SERVER, name, module=name)
        cluster.rpc(name).export_vm(svc, image, {"echo": "echo"})
    client_image = cluster.load_program(_FAN_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "a")
    cluster.spawn_vm("client", client_image, "b")


def test_topologies_diverge_for_the_same_scenario():
    """Same seed, same workload: the fabric's timing is part of the
    recorded history, so ring and mesh streams must differ."""
    ring_trace = record_run(_fan_build, ["client", "s1", "s2"], seed=7,
                            run_until=500 * MS)
    mesh_trace = record_run(_fan_build, ["client", "s1", "s2"], seed=7,
                            run_until=500 * MS, topology="mesh")
    assert ring_trace.topology == "ring"  # default threaded through
    assert ring_trace.fingerprint() != mesh_trace.fingerprint()
