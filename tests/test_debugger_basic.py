"""Integration tests: Pilgrim debugger driving agents on a live program."""

import pytest

from repro import MS, SEC, AgentError, Cluster, Pilgrim
from repro.cvm import CluRecord

COUNTER = """record point
  x: int
  y: int
end
printop point show_point
proc show_point(p: point) returns string
  return "(" + itoa(p.x) + ", " + itoa(p.y) + ")"
end
proc tick(n: int) returns int
  var p: point := point{x: n, y: n * 2}
  return p.x + p.y
end
proc main()
  var total: int := 0
  var i: int := 0
  while i < 1000 do
    i := i + 1
    total := total + tick(i)
    sleep(1000)
  end
  print total
end
"""


def make_session(source=COUNTER, seed=0):
    cluster = Cluster(names=["app", "debugger"], seed=seed)
    image = cluster.load_program(source, "app")
    proc = cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    return cluster, image, proc, dbg


def test_connect_and_disconnect():
    cluster, image, proc, dbg = make_session()
    infos = dbg.connect("app")
    assert infos[0]["name"] == "app"
    assert "app" in cluster.programs
    dbg.disconnect()
    assert not cluster.node("app").agent.connected()


def test_second_connect_rejected_then_forced():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    dbg2 = Pilgrim(cluster, home="debugger")
    with pytest.raises(AgentError, match="already active"):
        dbg2.connect("app")
    # Forcible connect abandons the original session (paper §3).
    dbg2.connect("app", force=True)
    agent = cluster.node("app").agent
    assert agent.session_id == dbg2.session_id
    dbg2.disconnect()


def test_list_processes():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    procs = dbg.processes("app")
    names = [p["name"] for p in procs]
    assert "main" in names
    assert "pilgrim.agent" in names


def test_breakpoint_by_source_line_hits_and_resumes():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    # Line 16 is `i := i + 1` inside the loop.
    bp = dbg.set_breakpoint("app", "app", line=16)
    assert bp.func == "main"
    hit = dbg.wait_for_breakpoint()
    assert hit["proc"] == "main"
    assert hit["line"] == 16
    assert hit["node"] == 0
    # The whole node halted.
    agent = cluster.node("app").agent
    assert agent.halted
    # Resume; program continues and can hit the breakpoint again.
    dbg.resume("app")
    hit2 = dbg.wait_for_breakpoint()
    assert hit2["line"] == 16
    dbg.clear_breakpoint(bp)
    dbg.resume("app")
    dbg.disconnect()
    cluster.run(until=cluster.world.now + 5 * SEC)
    assert image.console  # program ran to completion
    assert image.console[0] == str(sum(3 * i for i in range(1, 1001)))


def test_backtrace_and_variables_at_breakpoint():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    dbg.set_breakpoint("app", "app", line=17)  # i := i + 1
    hit = dbg.wait_for_breakpoint()
    frames = dbg.backtrace("app", hit["pid"])
    assert frames[0]["proc"] == "main"
    assert frames[0]["line"] == 17
    # The program kept running while the debugger attached (this is a
    # target-environment debugger), so assert relationships, not absolutes.
    i_value = dbg.read_var("app", hit["pid"], "i")
    total = dbg.read_var("app", hit["pid"], "total")
    assert i_value >= 0
    assert total == sum(3 * k for k in range(1, i_value + 1))
    dbg.resume("app")
    hit = dbg.wait_for_breakpoint()
    assert dbg.read_var("app", hit["pid"], "i") == i_value + 1
    assert dbg.read_var("app", hit["pid"], "total") == total + 3 * (i_value + 1)


def test_write_variable_changes_computation():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    bp = dbg.set_breakpoint("app", "app", line=16)
    hit = dbg.wait_for_breakpoint()
    # Jump the loop forward: i := 998 means only two more iterations.
    dbg.write_var("app", hit["pid"], "i", 997)
    dbg.write_var("app", hit["pid"], "total", 0)
    dbg.clear_breakpoint(bp)
    dbg.resume("app")
    cluster.run(until=cluster.world.now + 60 * SEC)
    assert image.console == [str(3 * 998 + 3 * 999 + 3 * 1000)]


def test_single_step():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    dbg.set_breakpoint("app", "app", line=16)
    hit = dbg.wait_for_breakpoint()
    state = dbg.step("app", hit["pid"])
    regs = state["registers"]
    assert regs["proc"] == "main"
    # Still stopped; stepping again advances the pc.
    state2 = dbg.step("app", hit["pid"])
    assert state2["registers"]["pc"] != regs["pc"] or (
        state2["registers"]["line"] != regs["line"]
    )
    dbg.resume("app")


def test_display_uses_print_operation():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    dbg.set_breakpoint("app", "app", line=11)  # tick: return p.x + p.y
    hit = dbg.wait_for_breakpoint()
    n = dbg.read_var("app", hit["pid"], "n")
    text = dbg.display("app", hit["pid"], "p")
    assert text == f"({n}, {2 * n})"
    dbg.resume("app")


def test_invoke_procedure_with_output():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    result, output = dbg.invoke("app", "app", "tick", [5])
    assert result == 15
    assert output == []


def test_invoke_show_point_directly():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    result, _ = dbg.invoke(
        "app", "app", "show_point", [CluRecord("point", {"x": 7, "y": 9})]
    )
    assert result == "(7, 9)"


def test_halt_request_freezes_program():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    dbg.halt("app")
    agent = cluster.node("app").agent
    assert agent.halted
    # Nothing further happens while halted.
    before = dict(agent.node.supervisor.processes[proc.pid].registers())
    cluster.run_for(100 * MS)
    after = dict(agent.node.supervisor.processes[proc.pid].registers())
    assert before == after
    dbg.resume("app")
    cluster.run_for(100 * MS)


def test_failure_event_reported():
    source = """
proc main()
  sleep(5000)
  var x: int := 1 / 0
end
"""
    cluster, image, proc, dbg = make_session(source=source)
    dbg.connect("app")
    failure = dbg.wait_for_failure()
    assert "division by zero" in failure["error"]
    assert failure["name"] == "main"


def test_failures_recorded_before_connect():
    """Target-environment debugging: the program failed before any
    debugger was attached; a later connect reports it (paper §1)."""
    source = """
proc main()
  sleep(5000)
  var x: int := 1 / 0
end
"""
    cluster, image, proc, dbg = make_session(source=source)
    cluster.run_for(1 * SEC)  # program crashes unattended
    infos = dbg.connect("app")
    failures = infos[0]["failures"]
    assert len(failures) == 1
    assert "division by zero" in failures[0]["error"]


def test_agent_dormant_overhead_is_zero():
    """With no debugger connected the agent consumes no CPU after boot."""
    cluster, image, proc, dbg = make_session()
    cluster.run_for(50 * MS)
    agent_proc = cluster.node("app").agent.process
    assert agent_proc.state.value == "waiting"  # parked on its queue
    assert cluster.node("app").agent.requests_handled == 0


def test_read_global_and_write_global():
    source = """
var counter: int := 5
proc main()
  while true do
    sleep(10000)
    counter := counter + 0
  end
end
"""
    cluster, image, proc, dbg = make_session(source=source)
    dbg.connect("app")
    assert dbg.read_global("app", "app", "counter") == 5
    dbg.write_global("app", "app", "counter", 42)
    assert dbg.read_global("app", "app", "counter") == 42


def test_wake_process_from_semaphore_wait():
    source = """
proc main()
  var s: sem := semaphore(0)
  var got: bool := wait(s, 60000000)
  if got then
    print "signalled"
  else
    print "woken"
  end
end
"""
    cluster, image, proc, dbg = make_session(source=source)
    dbg.connect("app")
    cluster.run_for(50 * MS)  # main is now waiting
    procs = dbg.processes("app")
    pid = [p["pid"] for p in procs if p["name"] == "main"][0]
    assert dbg.wake_process("app", pid, value=False)
    cluster.run_for(50 * MS)
    assert image.console == ["woken"]


def test_bad_session_rejected():
    cluster, image, proc, dbg = make_session()
    dbg.connect("app")
    dbg.session_id = 9999  # simulate a stale/guessed session id
    with pytest.raises(AgentError, match="session"):
        dbg.processes("app")
