"""Tests for the repro.obs instrumentation bus, metrics, and its wiring."""

from dataclasses import dataclass
from typing import Any, ClassVar, Optional

import pytest

from repro.cluster import Cluster
from repro.debugger import Pilgrim
from repro.obs import Bus, Metrics, events as ev, install_default_metrics
from repro.rpc import PacketMonitor, remote_call
from repro.rpc.monitor import MonitoredCall
from repro.sim import World


# ----------------------------------------------------------------------
# Bus mechanics
# ----------------------------------------------------------------------


def test_subscribe_emit_delivers_typed_event():
    bus = Bus()
    seen = []
    bus.subscribe(ev.PacketSent, seen.append)
    returned = bus.emit(ev.PacketSent, time=7, node=2, packet="pkt")
    assert len(seen) == 1
    event = seen[0]
    assert event is returned
    assert isinstance(event, ev.PacketSent)
    assert (event.time, event.node, event.packet) == (7, 2, "pkt")
    assert event.seq == 1  # bus stamps delivery order


def test_subscribers_run_in_subscription_order():
    bus = Bus()
    order = []
    bus.subscribe(ev.PacketSent, lambda e: order.append("first"))
    bus.subscribe(ev.PacketSent, lambda e: order.append("second"))
    bus.subscribe(ev.PacketSent, lambda e: order.append("third"))
    bus.emit(ev.PacketSent, time=0)
    assert order == ["first", "second", "third"]


def test_unsubscribe_stops_delivery_and_restores_dormancy():
    bus = Bus()
    seen = []
    fn = bus.subscribe(ev.PacketSent, seen.append)
    assert bus.has_subscribers(ev.PacketSent)
    assert bus.unsubscribe(ev.PacketSent, fn)
    assert not bus.has_subscribers(ev.PacketSent)
    bus.emit(ev.PacketSent, time=0)
    assert seen == []
    # A second unsubscribe is a harmless no-op.
    assert not bus.unsubscribe(ev.PacketSent, fn)


def test_subscription_is_per_type():
    bus = Bus()
    sent, delivered = [], []
    bus.subscribe(ev.PacketSent, sent.append)
    bus.subscribe(ev.PacketDelivered, delivered.append)
    bus.emit(ev.PacketSent, time=1)
    bus.emit(ev.PacketDelivered, time=2)
    bus.emit(ev.PacketDropped, time=3)  # nobody listens
    assert len(sent) == 1 and len(delivered) == 1


def test_subscriber_may_unsubscribe_during_delivery():
    bus = Bus()
    seen = []

    def once(event):
        seen.append(event)
        bus.unsubscribe(ev.PacketSent, once)

    bus.subscribe(ev.PacketSent, once)
    bus.emit(ev.PacketSent, time=1)
    bus.emit(ev.PacketSent, time=2)
    assert len(seen) == 1


@dataclass(frozen=True, slots=True, kw_only=True)
class _Probe(ev.Event):
    """Test-only event that counts its own constructions."""

    constructed: ClassVar[list] = []

    def __post_init__(self):
        _Probe.constructed.append(self)


def test_dormant_emit_never_constructs_the_event():
    """The tentpole's cost contract: a zero-subscriber emit is a dict
    lookup plus a truthiness check — the event object is never built."""
    _Probe.constructed.clear()
    bus = Bus()
    for _ in range(100):
        assert bus.emit(_Probe, time=0, node=1) is None
    assert _Probe.constructed == []
    assert bus.events_emitted == 0  # dormant emits are uncounted

    # With one subscriber the same call materializes exactly one event.
    bus.subscribe(_Probe, lambda e: None)
    bus.emit(_Probe, time=0, node=1)
    assert len(_Probe.constructed) == 1
    assert bus.events_emitted == 1


def test_events_are_immutable():
    bus = Bus()
    bus.subscribe(ev.PacketSent, lambda e: None)
    event = bus.emit(ev.PacketSent, time=1, node=0)
    with pytest.raises(Exception):
        event.time = 99


# ----------------------------------------------------------------------
# Metrics aggregation
# ----------------------------------------------------------------------


def test_default_metrics_aggregate_emitted_events():
    bus, metrics = Bus(), Metrics()
    install_default_metrics(bus, metrics)

    bus.emit(ev.PacketSent, time=1, node=0, packet=None)
    bus.emit(ev.PacketSent, time=2, node=0, packet=None)
    bus.emit(ev.PacketSent, time=3, node=1, packet=None)
    bus.emit(ev.PacketDelivered, time=4, node=1, packet=None)
    bus.emit(ev.PacketDropped, time=5, node=1, reason="lost")
    bus.emit(ev.PacketNacked, time=6, node=0)

    sent = metrics.labeled("ring.packets_sent")
    assert sent.total == 3
    assert sent.get(0) == 2 and sent.get(1) == 1
    assert sent.by_label() == {0: 2, 1: 1}
    assert metrics.counter("ring.packets_dropped").value == 1
    assert metrics.counter("ring.packets_nacked").value == 1

    bus.emit(ev.RpcCallStarted, time=10, node=0, call_id=1)
    bus.emit(ev.RpcCallStarted, time=11, node=0, call_id=2)
    assert metrics.gauge("rpc.calls_in_flight").value == 2
    bus.emit(ev.RpcCallCompleted, time=20, node=0, call_id=1, latency=100)
    bus.emit(ev.RpcCallRetried, time=21, node=0, call_id=2, retries=1)
    bus.emit(ev.RpcCallFailed, time=30, node=0, call_id=2, latency=300, reason="down")
    assert metrics.gauge("rpc.calls_in_flight").value == 0
    assert metrics.labeled("rpc.calls_started").get(0) == 2
    assert metrics.labeled("rpc.calls_completed").get(0) == 1
    assert metrics.labeled("rpc.calls_failed").get(0) == 1
    assert metrics.counter("rpc.retransmits").value == 1

    latency = metrics.histogram("rpc.latency_us")
    assert latency.count == 1 and latency.mean == 100.0

    snap = metrics.snapshot()
    assert snap["ring.packets_sent"] == 3
    assert snap["rpc.latency_us"]["count"] == 1


def test_histogram_statistics():
    hist = Metrics().histogram("h")
    for value in (10, 30, 20):
        hist.observe(value)
    assert (hist.count, hist.min, hist.max) == (3, 10, 30)
    assert hist.mean == 20.0


def test_metric_name_type_collision_raises():
    metrics = Metrics()
    metrics.counter("x")
    with pytest.raises(TypeError):
        metrics.gauge("x")


def test_world_owns_bus_and_metrics():
    world = World(seed=1)
    assert isinstance(world.bus, Bus)
    assert isinstance(world.metrics, Metrics)
    # The shipped metrics are subscribed from birth ...
    assert world.bus.has_subscribers(ev.PacketSent)
    assert world.bus.has_subscribers(ev.RpcCallCompleted)
    # ... but debug-session events stay dormant.
    for dormant in (
        ev.BreakpointHit,
        ev.ProcessHalted,
        ev.ProcessResumed,
        ev.TimerFrozen,
        ev.TimerThawed,
    ):
        assert not world.bus.has_subscribers(dormant)


def test_debug_events_dormant_until_pilgrim_attaches():
    cluster = Cluster(names=["a", "b", "debugger"])
    assert not cluster.world.bus.has_subscribers(ev.BreakpointHit)
    Pilgrim(cluster, home="debugger")
    assert cluster.world.bus.has_subscribers(ev.BreakpointHit)
    assert cluster.world.bus.has_subscribers(ev.TimerFrozen)


# ----------------------------------------------------------------------
# Monitor regression: the bus-fed PacketMonitor must reconstruct the same
# state machines as the legacy trace-hook algorithm.
# ----------------------------------------------------------------------


def _legacy_observe(calls: dict, packet: Any, at: int) -> None:
    """The pre-bus trace-hook transition logic, embedded verbatim so the
    test fails if the bus conversion ever drifts from it."""
    payload = packet.payload
    call_id = payload.get("call_id")
    if call_id is None:
        return
    call = calls.get(call_id)
    if call is None:
        call = MonitoredCall(call_id)
        calls[call_id] = call
        call.first_seen = at
    call.last_seen = at
    if packet.kind == "rpc_call":
        call.call_packets += 1
        call.service = payload.get("service", call.service)
        call.proc = payload.get("proc", call.proc)
        call.protocol = payload.get("protocol", call.protocol)
        call.state = "call_sent" if call.call_packets == 1 else "retransmitting"
    else:
        call.reply_packets += 1
        call.state = "completed" if payload.get("status") == "ok" else "failed"


def _run_monitored_workload(record: Optional[list] = None) -> PacketMonitor:
    """A workload with a clean call, a retransmission, and a failure."""
    cluster = Cluster(names=["client", "server"])
    cluster.rpc("server").export_native("svc", {"ping": lambda ctx: None})
    monitor = PacketMonitor(cluster.ring, cluster.rpc("client"))
    if record is not None:
        node_id = monitor.node_id

        def recorder(event):
            packet = event.packet
            if packet.kind in ("rpc_call", "rpc_reply") and node_id in (
                packet.src,
                packet.dst,
            ):
                record.append((event.time, packet))

        cluster.world.bus.subscribe(ev.PacketSent, recorder)
        cluster.world.bus.subscribe(ev.PacketDelivered, recorder)

    dropped = []

    def drop_first_call(packet):
        if packet.kind == "rpc_call" and not dropped:
            dropped.append(packet.packet_id)
            return True
        return False

    cluster.ring.drop_filters.append(drop_first_call)

    def caller(node):
        yield from remote_call(node.rpc, "svc", "ping")  # retransmitted
        yield from remote_call(node.rpc, "svc", "missing")  # fails

    node = cluster.node("client")
    node.spawn(caller(node), name="caller")
    cluster.run()
    assert dropped  # the retransmission path really ran
    return monitor


def test_packet_monitor_matches_legacy_replay():
    recorded: list = []
    monitor = _run_monitored_workload(record=recorded)

    legacy: dict = {}
    for at, packet in recorded:
        _legacy_observe(legacy, packet, at)

    assert legacy.keys() == monitor.calls.keys() and legacy
    for call_id, legacy_call in legacy.items():
        live_call = monitor.calls[call_id]
        assert live_call.describe() == legacy_call.describe()
        assert live_call.first_seen == legacy_call.first_seen
        assert live_call.last_seen == legacy_call.last_seen
    states = sorted(c.state for c in monitor.calls.values())
    assert states == ["completed", "failed"]
    retransmitted = [c for c in monitor.calls.values() if c.call_packets > 1]
    assert retransmitted  # the dropped first call forced a resend


def test_packet_monitor_detach_stops_observation():
    monitor = _run_monitored_workload()
    observed = dict(monitor.calls)
    monitor.detach()
    assert monitor.runtime.monitor is None
    bus = monitor.ring.world.bus
    bus.emit(ev.PacketSent, time=0, node=0, packet=None)
    assert monitor.calls == observed
