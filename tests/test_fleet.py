"""Fleet containment, journal resume, and crash-recovery tests.

The scenarios registered here are deliberately hostile: ``boom`` raises
inside the cell, ``die`` SIGKILLs its own worker, ``die_once`` kills the
first worker that runs it and passes on retry, ``hang`` sleeps past any
reasonable deadline.  Worker processes inherit them via fork, so the
fleet tests exercise the real multiprocess containment paths.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.campaign import (
    CampaignJournal,
    build_grid,
    cell_key,
    execute_cell,
    get_plan,
    run_campaign,
)
from repro.campaign.scenarios import SCENARIOS, Scenario
from repro.contracts.dsl import ContractSet, ProbeContract

# ----------------------------------------------------------------------
# Hostile test scenarios
# ----------------------------------------------------------------------

#: Environment variable naming the marker file ``die_once`` uses to kill
#: only the first worker that runs it (inherited by workers via fork).
_DIE_ONCE_MARKER = "REPRO_TEST_DIE_ONCE_MARKER"


def _boom_build(cluster):
    raise RuntimeError("kaboom: scenario build blew up")


def _die_build(cluster):
    os.kill(os.getpid(), signal.SIGKILL)


def _die_once_build(cluster):
    marker = os.environ[_DIE_ONCE_MARKER]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return {}


def _hang_build(cluster):
    time.sleep(300)


def _unpicklable_check(facts):
    return object()  # a "violation message" that is not JSON-serializable


def _empty_build(cluster):
    return {}


_NO_CONTRACTS = ContractSet(name="none", contracts=())

_UNJSON_SET = ContractSet(
    name="unjson",
    contracts=(ProbeContract(name="unjson",
                             description="returns an unserializable message",
                             check=_unpicklable_check),),
)

_HOSTILE = {
    "boom": Scenario(name="boom", description="raises during build",
                     names=("a", "b"), run_until=1000,
                     build=_boom_build, contracts=_NO_CONTRACTS),
    "die": Scenario(name="die", description="SIGKILLs its worker",
                    names=("a", "b"), run_until=1000,
                    build=_die_build, contracts=_NO_CONTRACTS),
    "die_once": Scenario(name="die_once", description="kills one worker",
                         names=("a", "b"), run_until=1000,
                         build=_die_once_build, contracts=_NO_CONTRACTS),
    "hang": Scenario(name="hang", description="sleeps forever",
                     names=("a", "b"), run_until=1000,
                     build=_hang_build, contracts=_NO_CONTRACTS),
    "unjson": Scenario(name="unjson", description="unserializable verdict",
                       names=("a", "b"), run_until=1000,
                       build=_empty_build, contracts=_UNJSON_SET),
}


@pytest.fixture(autouse=True)
def hostile_scenarios():
    """Register the hostile scenarios for each test, then restore."""
    SCENARIOS.update(_HOSTILE)
    try:
        yield
    finally:
        for name in _HOSTILE:
            SCENARIOS.pop(name, None)


def _grid(*scenarios, seeds=(0,), plans=("calm",)):
    return build_grid(list(scenarios), list(seeds),
                      [(name, get_plan(name)) for name in plans])


# Fast containment knobs: retries resolve in milliseconds, not seconds.
_FAST = dict(backoff=0.005, shrink=False)


# ----------------------------------------------------------------------
# Exception containment (the PR 4 shard-abort regression)
# ----------------------------------------------------------------------

def test_execute_cell_captures_exception_as_error_verdict():
    cell = _grid("boom")[0]
    result = execute_cell(cell)
    assert result["verdict"] == "error"
    assert result["error"]["kind"] == "exception"
    assert "kaboom" in result["error"]["detail"]
    assert "RuntimeError" in result["error"]["detail"]  # full traceback


def test_raising_cell_does_not_abort_siblings_inline():
    # Regression: under the PR 4 runner an exception in run_cell
    # propagated out of the shard loop and killed every sibling cell.
    report = run_campaign(_grid("boom", "echo"), workers=1, **_FAST)
    assert [c["verdict"] for c in report.cells] == ["error", "pass"]
    assert report.cells[1]["events"] > 0  # the sibling really ran


def test_raising_cell_does_not_abort_siblings_in_fleet():
    inline = run_campaign(_grid("boom", "echo"), workers=1, **_FAST)
    fleet = run_campaign(_grid("boom", "echo"), workers=2, **_FAST)
    assert [c["verdict"] for c in fleet.cells] == ["error", "pass"]
    assert fleet.canonical_json() == inline.canonical_json()


def test_unserializable_result_is_contained():
    report = run_campaign(_grid("unjson", "echo"), workers=2, **_FAST)
    assert report.cells[0]["verdict"] == "error"
    assert report.cells[0]["error"]["kind"] == "unserializable"
    assert report.cells[1]["verdict"] == "pass"


# ----------------------------------------------------------------------
# Worker death: retry, recovery, quarantine
# ----------------------------------------------------------------------

def test_chaos_kill_recovers_and_report_is_byte_identical():
    cells = _grid("echo", seeds=(0, 1), plans=("calm", "crash"))
    clean = run_campaign(cells, workers=2, **_FAST)
    chaotic = run_campaign(cells, workers=2, chaos_kill_cells=[1], **_FAST)
    assert chaotic.canonical_json() == clean.canonical_json()
    assert chaotic.fleet["fleet.worker_deaths"] == 1
    assert chaotic.fleet["fleet.retries"] == 1


def test_die_once_cell_passes_on_retry(tmp_path, monkeypatch):
    monkeypatch.setenv(_DIE_ONCE_MARKER, str(tmp_path / "died"))
    report = run_campaign(_grid("die_once", "echo"), workers=2, **_FAST)
    assert [c["verdict"] for c in report.cells] == ["pass", "pass"]
    assert report.fleet["fleet.worker_deaths"] == 1
    assert report.fleet["fleet.retries"] == 1


def test_poison_cell_is_quarantined():
    report = run_campaign(_grid("die", "echo"), workers=2,
                          quarantine_after=2, **_FAST)
    assert report.cells[0]["verdict"] == "error"
    assert report.cells[0]["error"]["kind"] == "quarantined"
    assert report.cells[1]["verdict"] == "pass"
    assert report.fleet["fleet.worker_deaths"] == 2
    assert report.fleet["fleet.quarantined"] == 1


def test_hanging_cell_times_out_with_retry():
    report = run_campaign(_grid("hang", "echo"), workers=2,
                          cell_timeout=0.3, retries=1, **_FAST)
    assert report.cells[0]["verdict"] == "error"
    assert report.cells[0]["error"]["kind"] == "timeout"
    assert report.cells[1]["verdict"] == "pass"
    assert report.fleet["fleet.timeouts"] == 2  # first attempt + retry


def test_error_verdicts_are_schedule_independent():
    # The same poison grid, run inline / fleet / wider fleet with a
    # different retry budget: one canonical document.
    cells = _grid("boom", "echo", seeds=(0, 1))
    inline = run_campaign(cells, workers=1, **_FAST)
    narrow = run_campaign(cells, workers=2, retries=0, **_FAST)
    wide = run_campaign(cells, workers=4, retries=3, **_FAST)
    assert inline.canonical_json() == narrow.canonical_json()
    assert inline.canonical_json() == wide.canonical_json()


# ----------------------------------------------------------------------
# Journal: checkpoint, resume, invalidation
# ----------------------------------------------------------------------

def _journal_grid():
    return _grid("echo", seeds=(0, 1), plans=("calm", "crash"))


def test_resume_reuses_journaled_cells(tmp_path):
    journal = tmp_path / "campaign.journal"
    cells = _journal_grid()
    first = run_campaign(cells, workers=1, journal_path=journal, **_FAST)
    assert first.fleet["fleet.cells_executed"] == len(cells)
    again = run_campaign(cells, workers=1, journal_path=journal,
                         resume=True, **_FAST)
    assert again.fleet["fleet.cells_resumed"] == len(cells)
    assert again.fleet["fleet.cells_executed"] == 0
    assert again.canonical_json() == first.canonical_json()


def test_resume_across_worker_counts_is_byte_identical(tmp_path):
    journal = tmp_path / "campaign.journal"
    cells = _journal_grid()
    first = run_campaign(cells, workers=2, journal_path=journal, **_FAST)
    resumed = run_campaign(cells, workers=4, journal_path=journal,
                           resume=True, **_FAST)
    assert resumed.canonical_json() == first.canonical_json()


def test_fresh_run_truncates_stale_journal(tmp_path):
    journal = tmp_path / "campaign.journal"
    cells = _journal_grid()
    run_campaign(cells, workers=1, journal_path=journal, **_FAST)
    # A *fresh* (non-resume) run must not leave the old entries around
    # for a later --resume to trust.
    rerun = run_campaign(cells, workers=1, journal_path=journal, **_FAST)
    assert rerun.fleet["fleet.cells_executed"] == len(cells)
    loaded = CampaignJournal.load(journal)
    assert len(loaded) == len(cells)  # rewritten by the second run


def test_partially_written_journal_is_skipped_on_resume(tmp_path):
    journal = tmp_path / "campaign.journal"
    cells = _journal_grid()
    first = run_campaign(cells, workers=1, journal_path=journal, **_FAST)
    # Simulate a torn write from a pre-atomic-rename world: truncate the
    # document mid-JSON.  Resume must recover to a full re-run, not
    # crash or trust garbage.
    text = journal.read_text()
    journal.write_text(text[:len(text) // 2])
    loaded = CampaignJournal.load(journal)
    assert loaded.recovered and len(loaded) == 0
    resumed = run_campaign(cells, workers=1, journal_path=journal,
                           resume=True, **_FAST)
    assert resumed.fleet["fleet.cells_executed"] == len(cells)
    assert resumed.fleet["fleet.cells_resumed"] == 0
    assert resumed.canonical_json() == first.canonical_json()


def test_journal_version_mismatch_is_skipped(tmp_path):
    journal = tmp_path / "campaign.journal"
    journal.write_text(json.dumps(
        {"version": 999, "cells": {}, "shrinks": {}}))
    loaded = CampaignJournal.load(journal)
    assert loaded.recovered and len(loaded) == 0


def test_invalidated_key_reexecutes_exactly_that_cell(tmp_path):
    journal = tmp_path / "campaign.journal"
    cells = _journal_grid()
    first = run_campaign(cells, workers=1, journal_path=journal, **_FAST)
    # Drop one cell's entry — the on-disk equivalent of its content
    # address changing (scenario edit, plan change, tree change).
    data = json.loads(journal.read_text())
    victim = cell_key(cells[2])
    assert victim in data["cells"]
    del data["cells"][victim]
    journal.write_text(json.dumps(data))
    resumed = run_campaign(cells, workers=1, journal_path=journal,
                           resume=True, **_FAST)
    assert resumed.fleet["fleet.cells_resumed"] == len(cells) - 1
    assert resumed.fleet["fleet.cells_executed"] == 1
    assert resumed.canonical_json() == first.canonical_json()


def test_resume_survives_grid_reordering(tmp_path):
    # Content addressing means results follow the cell, not its index.
    journal = tmp_path / "campaign.journal"
    cells = _journal_grid()
    run_campaign(cells, workers=1, journal_path=journal, **_FAST)
    reordered = build_grid(["echo"], [1, 0],
                           [(n, get_plan(n)) for n in ("crash", "calm")])
    resumed = run_campaign(reordered, workers=1, journal_path=journal,
                           resume=True, **_FAST)
    assert resumed.fleet["fleet.cells_resumed"] == len(cells)
    assert resumed.fleet["fleet.cells_executed"] == 0
    assert [c["index"] for c in resumed.cells] == [0, 1, 2, 3]


def test_resume_reuses_journaled_shrinks(tmp_path, monkeypatch):
    journal = tmp_path / "campaign.journal"
    cells = _grid("echo", plans=("crash",))
    first = run_campaign(cells, workers=1, shrink=True,
                         journal_path=journal, out_dir=tmp_path / "traces")
    assert len(first.shrinks) == 1
    # The resumed run must serve the shrink from the journal, not re-run
    # the (expensive) minimizer.
    import repro.campaign.runner as runner_module

    def _fail(*args, **kwargs):
        raise AssertionError("shrink_cell re-invoked on resume")

    monkeypatch.setattr(runner_module, "shrink_cell", _fail)
    resumed = run_campaign(cells, workers=1, shrink=True,
                           journal_path=journal, resume=True,
                           out_dir=tmp_path / "traces")
    assert resumed.canonical_json() == first.canonical_json()


# ----------------------------------------------------------------------
# Coordinator crash: SIGKILL mid-campaign, then --resume
# ----------------------------------------------------------------------

_CRASH_SCRIPT = """
import sys
from repro.campaign import build_grid, get_plan, run_campaign

plans = [(n, get_plan(n)) for n in ("calm", "crash")]
cells = build_grid(["echo"], list(range(20)), plans)
run_campaign(cells, workers=2, shrink=False, journal_path=sys.argv[1])
"""


def test_sigkill_coordinator_then_resume_is_byte_identical(tmp_path):
    """The ISSUE acceptance scenario: kill the coordinator mid-campaign,
    resume, and get the byte-identical report without re-executing the
    journaled cells."""
    journal = tmp_path / "campaign.journal"
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ, PYTHONPATH=src_root)
    proc = subprocess.Popen(
        [sys.executable, "-c", _CRASH_SCRIPT, str(journal)],
        env=env, cwd=tmp_path,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until at least 3 cells are journaled, then SIGKILL the
        # coordinator mid-flight.  Every snapshot is atomically
        # replaced, so whatever we observe is a complete document.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            loaded = CampaignJournal.load(journal)
            if not loaded.recovered and len(loaded) >= 3:
                break
            if proc.poll() is not None:
                break  # tiny grid raced to completion; still resumable
            time.sleep(0.002)
        if proc.poll() is None:
            proc.kill()
    finally:
        proc.wait()

    plans = [(n, get_plan(n)) for n in ("calm", "crash")]
    cells = build_grid(["echo"], list(range(20)), plans)
    journaled = CampaignJournal.load(journal)
    assert not journaled.recovered and len(journaled) >= 3

    resumed = run_campaign(cells, workers=2, shrink=False,
                           journal_path=journal, resume=True)
    clean = run_campaign(cells, workers=1, shrink=False)
    assert resumed.canonical_json() == clean.canonical_json()
    # The resumed run really reused the crashed run's progress: every
    # cell was either restored from the journal or executed, never both.
    restored = resumed.fleet["fleet.cells_resumed"]
    executed = resumed.fleet["fleet.cells_executed"]
    assert restored == len(journaled)
    assert restored >= 3
    assert restored + executed == len(cells)
