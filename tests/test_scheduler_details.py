"""Deeper scheduler tests: quanta, priorities, parallel node timing, and
the supervisor's debugging primitives."""

from repro.mayflower import Node, ProcessState
from repro.mayflower.syscalls import Cpu, Now, Sleep, Wait
from repro.params import Params
from repro.sim import MS, SEC, World


def test_round_robin_within_priority():
    world = World()
    node = Node(0, "n", world, Params(quantum=1 * MS, context_switch_cost=0))
    order = []

    def body(tag):
        for _ in range(3):
            yield Cpu(1 * MS)  # exactly one quantum per turn
            order.append(tag)

    node.spawn(body("a"))
    node.spawn(body("b"))
    node.spawn(body("c"))
    world.run()
    assert order[:6] == ["a", "b", "c", "a", "b", "c"]


def test_high_priority_runs_to_completion_first():
    world = World()
    node = Node(0, "n", world, Params(quantum=1 * MS))
    order = []

    def body(tag, steps):
        for _ in range(steps):
            yield Cpu(500)
        order.append(tag)

    node.spawn(body("low", 4), priority=0)
    node.spawn(body("high", 4), priority=10)
    world.run()
    assert order == ["high", "low"]


def test_two_nodes_consume_cpu_in_parallel():
    """The parallel-DES property: two busy nodes finish a 50 ms burn in
    ~50 ms of virtual time, not 100 ms."""
    world = World()
    params = Params()
    node_a = Node(0, "a", world, params)
    node_b = Node(1, "b", world, params)
    done = {}

    def burner(tag, node):
        yield Cpu(50 * MS)
        done[tag] = node.supervisor.current_time()

    node_a.spawn(burner("a", node_a))
    node_b.spawn(burner("b", node_b))
    world.run()
    assert abs(done["a"] - 50 * MS) < 2 * MS
    assert abs(done["b"] - 50 * MS) < 2 * MS
    assert world.now < 80 * MS  # parallel, not serialized


def test_single_node_timeshares_two_burners():
    """Two 25 ms burns on ONE CPU take ~50 ms together."""
    world = World()
    node = Node(0, "n", world, Params(context_switch_cost=0))
    finish = []

    def burner():
        yield Cpu(25 * MS)
        finish.append((yield Now()))

    node.spawn(burner())
    node.spawn(burner())
    world.run()
    assert max(finish) >= 50 * MS - 1 * MS


def test_cpu_accounting():
    world = World()
    node = Node(0, "n", world, Params())

    def body():
        yield Cpu(10 * MS)

    node.spawn(body())
    world.run()
    assert node.supervisor.cpu_consumed >= 10 * MS


def test_waiting_process_timer_fires_at_local_time():
    """A process that burns CPU then sleeps wakes at burn + sleep."""
    world = World()
    node = Node(0, "n", world, Params())
    woke = []

    def body():
        yield Cpu(7 * MS)
        yield Sleep(5 * MS)
        woke.append((yield Now()))

    node.spawn(body())
    world.run()
    assert 12 * MS <= woke[0] < 13 * MS


def test_unhalt_single_process():
    world = World()
    node = Node(0, "n", world, Params(quantum=1 * MS))
    progress = {"a": 0, "b": 0}

    def body(tag):
        while True:
            yield Cpu(100)
            progress[tag] += 1

    proc_a = node.spawn(body("a"), name="a")
    proc_b = node.spawn(body("b"), name="b")
    world.run(until=5 * MS)
    node.supervisor.halt_all()
    # Release only process a.
    node.supervisor.unhalt_process(proc_a)
    snap_b = progress["b"]
    world.run(until=15 * MS)
    assert progress["a"] > 0
    assert progress["b"] == snap_b  # b still halted
    node.supervisor.resume_all()
    world.run(until=30 * MS)
    assert progress["b"] > snap_b


def test_debugger_wake_routes_through_wait_object():
    """§5.4: transferring a process out of a semaphore wait must leave the
    semaphore's queues consistent."""
    world = World()
    node = Node(0, "n", world, Params())
    sem = node.semaphore(name="s")
    results = []

    def waiter(tag):
        got = yield Wait(sem, timeout=10 * SEC)
        results.append((tag, got))

    proc_1 = node.spawn(waiter(1))
    proc_2 = node.spawn(waiter(2))
    world.run(until=5 * MS)
    assert node.supervisor.debugger_wake(proc_1)
    world.run(until=10 * MS)
    assert results == [(1, False)]  # woken 'as if timed out'
    # The semaphore still works for the remaining waiter.
    sem.signal()
    world.run(until=15 * MS)
    assert results == [(1, False), (2, True)]
    assert sem.waiters == type(sem.waiters)()  # empty deque


def test_exception_in_one_process_does_not_stop_others():
    world = World()
    node = Node(0, "n", world, Params())
    progress = []

    def bad():
        yield Cpu(100)
        raise RuntimeError("oops")

    def good():
        for _ in range(5):
            yield Cpu(100)
            progress.append(1)

    failed = node.spawn(bad(), name="bad")
    node.spawn(good(), name="good")
    world.run()
    assert failed.state == ProcessState.FAILED
    assert len(progress) == 5


def test_on_exit_callbacks_run_for_failure_too():
    world = World()
    node = Node(0, "n", world, Params())
    exits = []

    def bad():
        yield Cpu(10)
        raise ValueError("x")

    process = node.spawn(bad())
    process.on_exit.append(lambda p: exits.append(p.state))
    world.run()
    assert exits == [ProcessState.FAILED]


def test_terminate_live_process():
    world = World()
    node = Node(0, "n", world, Params())

    def body():
        yield Sleep(10 * SEC)

    process = node.spawn(body())
    world.run(until=5 * MS)
    node.supervisor.terminate(process)
    assert not process.is_live()
    world.run()  # the stale timer fires harmlessly
    assert world.pending_count() == 0


def test_quantum_overrun_for_indivisible_action():
    """A single action larger than the quantum still executes (fresh-slice
    overrun) instead of starving."""
    world = World()
    node = Node(0, "n", world, Params(quantum=1 * MS, syscall_cost=3 * MS))
    done = []

    def body():
        yield Sleep(1000)  # syscall cost 3ms > quantum
        done.append(1)

    node.spawn(body())
    world.run()
    assert done == [1]
