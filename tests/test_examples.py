"""The examples are part of the public API surface: run each end-to-end
and check its key output lines."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "attached, session" in out
    assert "breakpoint: pid" in out
    assert "req = factorial(" in out
    assert "distributed backtrace" in out
    assert "<rpc runtime>" in out
    assert "program still running after detach" in out


def test_distributed_breakpoint():
    out = run_example("distributed_breakpoint.py")
    assert "outcome for Q: signalled  (typical computation preserved)" in out
    assert "outcome for Q: timed_out  (atypical: Q observed P's halt)" in out


def test_shared_server_debugging():
    out = run_example("shared_server_debugging.py")
    # Naive server loses the TUID during the halt...
    assert "mid-halt: TUID valid = False" in out
    # ...the Figure-4 server keeps it alive.
    assert "mid-halt: TUID valid = True" in out
    assert "reclaims by contention: 1" in out


def test_maybe_rpc_postmortem():
    out = run_example("maybe_rpc_postmortem.py")
    assert "call packet lost" in out
    assert "reply packet lost" in out
    assert "recent-call buffer" in out


def test_repl_session():
    out = run_example("repl_session.py")
    assert "* breakpoint: node 0" in out
    assert "j = job#" in out
    assert "recent outcomes:" in out
    assert "disconnected; program continues" in out


def test_live_python_debugging():
    out = run_example("live_python_debugging.py")
    assert "attached; threads: ['producer', 'consumer']" in out
    assert "breakpoint: thread 'producer'" in out
    assert "ledger frozen = True" in out
    assert "single step -> line" in out
    assert "detached; program still running" in out


def test_branching():
    out = run_example("branching.py")
    assert "forked branch" in out
    assert "parent untouched: True" in out
    assert "identical fork deduped: True" in out
    assert "parent vs partitioned: first divergence at event #" in out
    assert "partitioned vs crashed: first divergence at event #" in out
    assert "counts.rpc_failed" in out
    assert "branches recorded: 3" in out


def test_time_travel():
    out = run_example("time_travel.py")
    assert "replay byte-identical: True" in out
    assert "at 150ms: cursor #" in out
    assert "reverse_step: now before event #" in out
    assert "causal history of first delivery" in out
    assert "races between seeds 1 and 5: 1" in out
    assert "races between seed 1 and itself: 0" in out
