"""Failure injection: crashes, lossy links, and session robustness."""

import pytest

from repro import MS, SEC, AgentError, Cluster, DebuggerError, Pilgrim
from repro.params import Params

SPIN = "proc main()\n  while true do\n    sleep(5000)\n  end\nend"

TWO_WORKERS = """
proc worker(n: int)
  var i: int := 0
  while true do
    i := i + 1
    sleep(4000)
  end
end
proc main()
  spawn worker(1)
  spawn worker(2)
  sleep(1000000000)
end
"""


def test_debugger_request_to_crashed_node_times_out():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    cluster.node("app").crash()
    with pytest.raises(DebuggerError):
        dbg.processes("app")


def test_halt_broadcast_survives_crashed_peer():
    """A dead peer must not wedge the halt broadcast (bounded NACK
    retries, then the node is presumed crashed)."""
    cluster = Cluster(names=["a", "b", "c", "debugger"])
    for name in ("a", "b", "c"):
        image = cluster.load_program(SPIN, name)
        cluster.spawn_vm(name, image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("a", "b", "c")
    cluster.node("b").crash()
    dbg.halt("a")
    cluster.run_for(50 * MS)
    assert cluster.node("a").agent.halted
    assert cluster.node("c").agent.halted  # broadcast got past the corpse
    dbg.resume("a")
    cluster.run_for(50 * MS)
    assert not cluster.node("c").agent.halted


def test_halt_broadcast_retransmits_through_interface_nacks():
    cluster = Cluster(names=["a", "b", "debugger"], seed=5)
    for name in ("a", "b"):
        image = cluster.load_program(SPIN, name)
        cluster.spawn_vm(name, image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("a", "b")
    # Node b's interface rejects everything at first; the hardware NACK
    # drives the agent's retransmissions (paper §5.2) until it recovers.
    b_id = cluster.node("b").node_id
    nack_b = lambda packet: packet.dst == b_id
    cluster.ring.nack_filters.append(nack_b)
    dbg.halt("a")
    assert not cluster.node("b").agent.halted  # peer unreachable so far
    cluster.ring.nack_filters.remove(nack_b)
    cluster.run_for(100 * MS)
    assert cluster.node("b").agent.halted
    assert cluster.node("a").agent.halt_messages_sent > 1
    dbg.resume("a")


def test_disconnect_while_halted_resumes_program():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    proc = cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    dbg.halt("app")
    assert cluster.node("app").agent.halted
    dbg.disconnect()
    assert not cluster.node("app").agent.halted
    # The logical clock snapped back to real time (paper §5.2).
    assert cluster.node("app").clock.delta == 0
    cluster.run_for(50 * MS)
    assert proc.is_live()


def test_forcible_connect_while_halted_cleans_up():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(SPIN, "app")
    cluster.spawn_vm("app", image, "main")
    dbg1 = Pilgrim(cluster, home="debugger")
    dbg1.connect("app")
    bp = dbg1.set_breakpoint("app", "app", line=3)
    dbg1.wait_for_breakpoint()
    agent = cluster.node("app").agent
    assert agent.halted and agent.breakpoints

    dbg2 = Pilgrim(cluster, home="debugger")
    dbg2.connect("app", force=True)
    # Original session abandoned: breakpoints cleared, node resumed.
    assert agent.session_id == dbg2.session_id
    assert agent.breakpoints == {}
    assert not agent.halted
    # The program runs untrapped now.
    cluster.run_for(100 * MS)
    assert not agent.halted


def test_two_processes_trapped_then_continue_resumes_both():
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(TWO_WORKERS, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    bp = dbg.set_breakpoint("app", "app", line=5)  # i := i + 1 in worker
    first = dbg.wait_for_breakpoint()
    agent = cluster.node("app").agent
    # One worker trapped; the other was halted before reaching the trap.
    assert len(agent.trapped) == 1
    i_before = dbg.read_var("app", first["pid"], "i")
    dbg.clear_breakpoint(bp)
    dbg.resume("app")
    cluster.run_for(100 * MS)
    # Both workers are making progress again.
    workers = [p for p in dbg.processes("app") if p["name"] == "worker"]
    assert all(w["state"] in ("ready", "waiting", "running") for w in workers)
    dbg.halt("app")
    i_after = dbg.read_var("app", first["pid"], "i")
    assert i_after > i_before
    dbg.resume("app")


def test_invoke_failure_reports_agent_error():
    source = """
proc boom() returns int
  return 1 / 0
end
proc main()
  sleep(1000000000)
end
"""
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(source, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    with pytest.raises(AgentError, match="invocation failed"):
        dbg.invoke("app", "app", "boom", [])


def test_display_of_opaque_value_falls_back():
    source = """
proc main()
  var s: sem := semaphore(0)
  var got: bool := wait(s, 1000000000)
end
"""
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(source, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    cluster.run_for(20 * MS)
    pid = next(p["pid"] for p in dbg.processes("app") if p["name"] == "main")
    text = dbg.display("app", pid, "s")
    assert "sem" in text.lower() or "Semaphore" in text
    value = dbg.read_var("app", pid, "s")
    assert "sem" in str(value).lower()


def test_lossy_ring_exactly_once_program_still_completes():
    cluster = Cluster(
        names=["client", "server", "debugger"],
        seed=11,
        params=Params(packet_loss_probability=0.25),
    )
    server_image = cluster.load_program(
        "proc inc(x: int) returns int\n  return x + 1\nend", "server"
    )
    cluster.rpc("server").export_vm("svc", server_image, {"inc": "inc"})
    client_image = cluster.load_program(
        """
proc main()
  var total: int := 0
  for i := 1 to 10 do
    var r: int := remote svc.inc(i)
    if failed(r) then
      total := total - 1000
    else
      total := total + r
    end
  end
  print total
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    cluster.run(until=60 * SEC)
    # sum(i+1 for i in 1..10) = 65; exactly-once rides out the loss.
    assert client_image.console == ["65"]


def test_breakpoint_in_program_with_steady_rpc_traffic():
    """Halting a node with calls in flight must not corrupt the protocol:
    after resume, all calls still complete exactly once."""
    cluster = Cluster(names=["client", "server", "debugger"])
    server_image = cluster.load_program(
        "proc echo(x: int) returns int\n  return x\nend", "server"
    )
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    client_image = cluster.load_program(
        """
var acc: int := 0
proc main()
  for i := 1 to 30 do
    var r: int := remote svc.echo(i)
    acc := acc + r
  end
  print acc
end
""",
        "client",
    )
    cluster.spawn_vm("client", client_image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client", "server")
    for _ in range(3):
        cluster.run_for(40 * MS)
        dbg.halt("client")
        dbg.run_for(150 * MS)
        dbg.resume("client")
    dbg.disconnect()
    cluster.run(until=cluster.world.now + 10 * SEC)
    assert client_image.console == [str(sum(range(1, 31)))]


def test_failure_event_halts_other_processes_for_inspection():
    source = """
proc crasher()
  sleep(20000)
  var x: int := 1 / 0
end
proc main()
  spawn crasher()
  var i: int := 0
  while true do
    i := i + 1
    sleep(1000)
  end
end
"""
    cluster = Cluster(names=["app", "debugger"])
    image = cluster.load_program(source, "app")
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    failure = dbg.wait_for_failure()
    assert failure["name"] == "crasher"
    # The whole node halted so the state at failure can be examined.
    assert cluster.node("app").agent.halted
    main_pid = next(p["pid"] for p in dbg.processes("app") if p["name"] == "main")
    i_at_failure = dbg.read_var("app", main_pid, "i")
    cluster.run_for(200 * MS)
    assert dbg.read_var("app", main_pid, "i") == i_at_failure  # frozen
    dbg.resume("app")
