"""Reproducer corpus: banking, replay-as-regression, seeding, CLI."""

import json
from pathlib import Path

import pytest

from repro.campaign import Corpus, build_grid, get_plan, run_campaign
from repro.campaign.cli import main as campaign_main
from repro.campaign.corpus import INDEX_NAME


@pytest.fixture()
def banked(tmp_path):
    """A campaign with one failing cell, banked into a fresh corpus."""
    cells = build_grid(["echo"], [0], [("crash", get_plan("crash"))])
    corpus_dir = tmp_path / "corpus"
    report = run_campaign(cells, workers=1, shrink=True,
                          corpus_dir=corpus_dir)
    return corpus_dir, report


def test_campaign_banks_shrunken_reproducer(banked):
    corpus_dir, report = banked
    corpus = Corpus.open(corpus_dir)
    assert len(corpus) == 1
    entry = corpus.entries()[0]
    assert entry.label() == "echo/s0/crash"
    assert entry.violations == report.shrinks[0]["violations"]
    assert (corpus_dir / entry.trace).exists()
    assert (corpus_dir / INDEX_NAME).exists()


def test_corpus_replay_reproduces(banked):
    corpus_dir, _ = banked
    outcomes = Corpus.open(corpus_dir).replay_all()
    assert len(outcomes) == 1
    entry, ok, detail = outcomes[0]
    assert ok, detail
    assert "byte-identical" in detail


def test_corpus_add_is_idempotent(banked):
    corpus_dir, _ = banked
    cells = build_grid(["echo"], [0], [("crash", get_plan("crash"))])
    run_campaign(cells, workers=1, shrink=True, corpus_dir=corpus_dir)
    assert len(Corpus.open(corpus_dir)) == 1  # same reproducer, same key


def test_corpus_replay_detects_missing_trace(banked):
    corpus_dir, _ = banked
    corpus = Corpus.open(corpus_dir)
    (corpus_dir / corpus.entries()[0].trace).unlink()
    entry, ok, detail = corpus.replay_all()[0]
    assert not ok and "missing" in detail


def test_corpus_replay_detects_verdict_drift(banked):
    corpus_dir, _ = banked
    index = corpus_dir / INDEX_NAME
    data = json.loads(index.read_text())
    for record in data["entries"].values():
        record["violations"] = ["something that never happened"]
    index.write_text(json.dumps(data))
    entry, ok, detail = Corpus.open(corpus_dir).replay_all()[0]
    assert not ok and "drifted" in detail


def test_partially_written_index_is_skipped(banked):
    corpus_dir, _ = banked
    index = corpus_dir / INDEX_NAME
    text = index.read_text()
    index.write_text(text[:len(text) // 2])  # torn write
    corpus = Corpus.open(corpus_dir)
    assert corpus.recovered and len(corpus) == 0
    # The trace files are untouched; only the table was lost.
    assert list(corpus_dir.glob("*.trace.bin"))


def test_corpus_seeds_future_grids(banked):
    corpus_dir, _ = banked
    corpus = Corpus.open(corpus_dir)
    seeded = corpus.cells(start_index=5)
    assert [c.index for c in seeded] == [5]
    cell = seeded[0]
    assert cell.plan_name == "corpus:crash"
    # The minimal plan still reproduces under the full scenario horizon.
    report = run_campaign(seeded, workers=1, shrink=False)
    assert report.cells[0]["verdict"] == "fail"


def test_cli_corpus_list_and_replay(banked, capsys):
    corpus_dir, _ = banked
    assert campaign_main(["corpus", "list", str(corpus_dir)]) == 0
    out = capsys.readouterr().out
    assert "1 reproducer" in out and "echo/s0/crash" in out
    assert campaign_main(["corpus", "replay", str(corpus_dir)]) == 0
    out = capsys.readouterr().out
    assert "REPRODUCED" in out and "1/1 reproduced" in out


def test_cli_corpus_replay_fails_on_drift(banked, capsys):
    corpus_dir, _ = banked
    index = corpus_dir / INDEX_NAME
    data = json.loads(index.read_text())
    for record in data["entries"].values():
        record["violations"] = ["phantom"]
    index.write_text(json.dumps(data))
    assert campaign_main(["corpus", "replay", str(corpus_dir)]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_cli_run_from_corpus_appends_seeded_cells(banked, tmp_path, capsys):
    corpus_dir, _ = banked
    code = campaign_main([
        "run", "--seeds", "1", "--plans", "calm",
        "--from-corpus", str(corpus_dir), "--no-shrink",
    ])
    out = capsys.readouterr().out
    assert "corpus:crash" in out  # the banked reproducer rode along
    assert code == 1  # and it still fails, so the campaign reports it


def test_cli_resume_requires_checkpoint(capsys):
    assert campaign_main(["run", "--resume"]) == 2
    assert "--checkpoint" in capsys.readouterr().out


def test_committed_corpus_replays():
    # The in-repo corpus (tests/corpus, rebuilt via tools/build_corpus.py)
    # is a live regression suite: every banked reproducer must still
    # replay byte-identically and yield its recorded violations.
    committed = Path(__file__).parent / "corpus"
    corpus = Corpus.open(committed)
    assert not corpus.recovered
    assert len(corpus) >= 4
    for entry, ok, detail in corpus.replay_all():
        assert ok, f"{entry.label()}: {detail}"
