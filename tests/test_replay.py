"""Record/replay: byte-identity, checkpoints, time travel, races."""

import pytest

from repro import MS, SEC, Cluster, FaultPlan, Pilgrim, Trace, record_run, replay_trace
from repro.obs import EventStreamRecorder
from repro.replay import ReplayDivergence, ReplayUnsupported, ReplayWorld, TimeTravel, detect_races

ECHO_SERVER = "proc echo(x: int) returns int\n  return x\nend"

CHAOS_CLIENT = """
proc main()
  var total: int := 0
  for i := 1 to 12 do
    var r: int := remote svc.echo(i)
    if failed(r) then
      total := total - 100
    else
      total := total + r
    end
  end
  print total
end
"""

ONE_CALL_CLIENT = """
proc main()
  var r: int := remote svc.echo(7)
  print r
end
"""

CHAOS_NAMES = ["client", "server", "debugger"]


def build_chaos(cluster):
    """The PR 2 chaos scenario: a 12-call echo client under a nemesis."""
    server_image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    client_image = cluster.load_program(CHAOS_CLIENT, "client")
    cluster.spawn_vm("client", client_image, "main")


def chaos_plan():
    # Node ids follow CHAOS_NAMES order: client=0, server=1.
    return (FaultPlan()
            .crash(at=60 * MS, node="server")
            .reboot(at=200 * MS, node="server")
            .partition(at=250 * MS, groups=[[0], [1]], duration=100 * MS)
            .delay(at=360 * MS, duration=400 * MS, extra=5 * MS, jitter=2 * MS)
            .duplicate(at=360 * MS, duration=400 * MS, probability=0.5))


# ----------------------------------------------------------------------
# Byte-identical replay (the acceptance bar)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_replay_is_byte_identical_without_faults(seed):
    trace = record_run(build_chaos, CHAOS_NAMES, seed=seed, run_until=2 * SEC)
    report = replay_trace(trace, build_chaos)
    assert report.identical
    assert report.events == len(trace.events)
    assert report.fingerprint == trace.fingerprint()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_replay_is_byte_identical_under_chaos(seed):
    trace = record_run(build_chaos, CHAOS_NAMES, seed=seed, plan=chaos_plan(),
                       checkpoint_every=100 * MS, run_until=4 * SEC)
    assert len(trace.checkpoints) > 1  # base + periodic
    report = replay_trace(trace, build_chaos)
    assert report.identical
    assert report.checkpoints_verified == len(trace.checkpoints)
    assert report.fingerprint == trace.fingerprint()


def test_trace_lines_match_event_stream_recorder():
    """The trace's normalized stream is byte-identical to what a plain
    EventStreamRecorder sees of the same run (shared normalizer)."""
    recorders = []

    def build(cluster):
        recorders.append(EventStreamRecorder(cluster.world.bus))
        build_chaos(cluster)

    trace = record_run(build, CHAOS_NAMES, seed=7, plan=chaos_plan(),
                       run_until=4 * SEC)
    assert trace.lines() == recorders[0].lines()


def test_divergence_reports_first_mismatching_event():
    trace = record_run(build_chaos, CHAOS_NAMES, seed=1, run_until=2 * SEC)
    assert len(trace.events) > 11
    tampered = trace.events[10].line
    trace.events[10].line = tampered + " TAMPERED"
    with pytest.raises(ReplayDivergence) as excinfo:
        replay_trace(trace, build_chaos)
    exc = excinfo.value
    assert exc.kind == "event"
    assert exc.index == 10
    assert exc.expected.endswith("TAMPERED")
    assert exc.actual == tampered


def test_manual_trace_refuses_re_execution():
    cluster = Cluster(names=["app", "debugger"], seed=0)
    dbg = Pilgrim(cluster, home="debugger")
    writer = dbg.start_recording()
    cluster.run_for(10 * MS)
    trace = dbg.stop_recording()
    assert writer.header["seed"] == 0
    assert trace.footer["drive"] == {"mode": "manual"}
    with pytest.raises(ReplayUnsupported):
        ReplayWorld(trace, lambda cluster: None).run()


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


def test_trace_save_load_round_trip(tmp_path):
    trace = record_run(build_chaos, CHAOS_NAMES, seed=2, plan=chaos_plan(),
                       checkpoint_every=100 * MS, run_until=4 * SEC)
    path = tmp_path / "run.trace.jsonl"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.header == trace.header
    assert loaded.footer == trace.footer
    assert loaded.lines() == trace.lines()
    assert loaded.fingerprint() == trace.fingerprint()
    assert len(loaded.checkpoints) == len(trace.checkpoints)
    assert [c.to_dict() for c in loaded.checkpoints] == \
        [c.to_dict() for c in trace.checkpoints]
    # The round-tripped trace replays like the original.
    report = replay_trace(loaded, build_chaos)
    assert report.identical


def test_trace_load_rejects_wrong_version(tmp_path):
    trace = record_run(build_chaos, CHAOS_NAMES, seed=1, run_until=1 * SEC)
    trace.header["version"] = 999
    path = tmp_path / "bad.trace.jsonl"
    trace.save(path)
    with pytest.raises(ValueError, match="version 999 unsupported"):
        Trace.load(path)


# ----------------------------------------------------------------------
# Checkpoints and time travel
# ----------------------------------------------------------------------


def _chaos_trace(seed=3):
    return record_run(build_chaos, CHAOS_NAMES, seed=seed, plan=chaos_plan(),
                      checkpoint_every=100 * MS, run_until=4 * SEC)


def test_checkpoint_seek_equals_full_fold():
    """Seeking via a checkpoint must answer exactly like folding the
    whole prefix from the base."""
    trace = _chaos_trace()
    assert len(trace.checkpoints) >= 3
    fast = TimeTravel(trace)
    # A checkpoint-stripped twin folds every prefix from the base.
    slow = TimeTravel(Trace(trace.header, trace.events,
                            trace.checkpoints[:1], trace.footer))
    for checkpoint in trace.checkpoints:
        assert fast.seek(checkpoint.index).view.to_dict() == \
            checkpoint.view.to_dict()
    for t in (0, 50 * MS, 150 * MS, 333 * MS, 1 * SEC, 4 * SEC):
        a, b = fast.at(t), slow.at(t)
        assert a.index == b.index
        assert a.view.to_dict() == b.view.to_dict()


def test_at_uses_prefix_semantics():
    trace = _chaos_trace()
    tt = TimeTravel(trace)
    assert tt.at(-1).index == 0
    assert tt.at(trace.final_time).index == len(trace.events)
    moment = tt.at(100 * MS)
    # Everything in the prefix happened at or before the target...
    assert all(e.time <= 100 * MS for e in trace.events[:moment.index])
    # ...and the cursor cannot be extended without passing it.
    if moment.index < len(trace.events):
        assert trace.events[moment.index].time > 100 * MS


def test_step_and_reverse_step_are_symmetric():
    trace = _chaos_trace()
    tt = TimeTravel(trace)
    middle = tt.at(200 * MS)
    forward = tt.step()
    assert forward.index == middle.index + 1
    back = tt.reverse_step()
    assert back.index == middle.index
    assert back.view.to_dict() == middle.view.to_dict()
    # Stepping through a region matches folding straight to its end.
    for _ in range(25):
        tt.step()
    stepped = tt.current()
    assert stepped.view.to_dict() == tt.seek(stepped.index).view.to_dict()


def test_lamport_clocks_and_causal_predecessors():
    trace = _chaos_trace()
    tt = TimeTravel(trace)
    clocks = tt.lamport_clocks()
    assert len(clocks) == len(trace.events)
    # Every delivery is causally after its send: strictly larger clock.
    delivered = [e for e in trace.events if e.type == "PacketDelivered"]
    assert delivered
    target = delivered[0]
    history = tt.causal_predecessors(target.index)
    assert history  # at minimum the matching PacketSent
    assert all(e.index < target.index for e in history)
    sends = [e for e in history if e.type == "PacketSent"
             and e.fields["packet"]["pkt"] == target.fields["packet"]["pkt"]]
    assert len(sends) >= 1
    assert all(clocks[e.index] < clocks[target.index] for e in history)


def test_why_halted_points_at_breakpoint():
    cluster = Cluster(names=["app", "debugger"], seed=0)
    image = cluster.load_program(
        "proc main()\n  var i: int := 0\n  while true do\n"
        "    i := i + 1\n    sleep(1000)\n  end\nend",
        "app",
    )
    cluster.spawn_vm("app", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("app")
    dbg.start_recording()
    dbg.set_breakpoint("app", "app", line=4)  # i := i + 1
    dbg.wait_for_breakpoint()
    trace = dbg.stop_recording()

    verdict = dbg.why_halted()
    assert verdict["halted"]
    assert verdict["cause"] is not None
    assert verdict["cause"].type == "BreakpointHit"
    assert verdict["halt_event"].type == "ProcessHalted"
    assert verdict["since"] >= verdict["cause"].time

    # Rewinding to before the hit answers "not halted".
    before = dbg.at(verdict["cause"].time - 1)
    assert before.index <= verdict["cause"].index
    assert not dbg.why_halted()["halted"]
    assert trace is dbg.trace


# ----------------------------------------------------------------------
# Message races
# ----------------------------------------------------------------------

RACE_NAMES = ["alice", "bob", "server", "debugger"]


def build_two_clients(cluster):
    """Two independent clients race their calls into one server under
    delivery jitter — arrival order at the server is seed-dependent."""
    server_image = cluster.load_program(ECHO_SERVER, "server")
    cluster.rpc("server").export_vm("svc", server_image, {"echo": "echo"})
    for name in ("alice", "bob"):
        image = cluster.load_program(ONE_CALL_CLIENT, name)
        cluster.spawn_vm(name, image, "main")


def _race_trace(seed):
    plan = FaultPlan().delay(at=0, duration=1 * SEC, extra=2 * MS, jitter=6 * MS)
    return record_run(build_two_clients, RACE_NAMES, seed=seed, plan=plan,
                      run_until=2 * SEC)


def test_detector_flags_receive_order_inversion():
    races = detect_races(_race_trace(seed=1), _race_trace(seed=5))
    assert races
    server_id = 2  # RACE_NAMES order
    race = races[0]
    assert race.dst == server_id
    # The racing messages come from the two different clients.
    assert race.first[0] != race.second[0]
    # And the runs really did deliver them in opposite relative order.
    assert (race.pos_a[0] < race.pos_a[1]) and (race.pos_b[0] > race.pos_b[1])


def test_same_seed_never_races():
    assert detect_races(_race_trace(seed=1), _race_trace(seed=1)) == []


def test_why_halted_carries_the_invariant_level_why():
    """Both why_halted shapes include the first contract violation."""
    from repro.campaign.scenarios import get_plan, get_scenario
    from repro.contracts.report import ContractViolation
    from repro.replay.replay import record_run
    from repro.replay.timetravel import TimeTravel

    scenario = get_scenario("kv")
    trace = record_run(scenario.build, list(scenario.names), seed=0,
                       run_until=scenario.run_until,
                       plan=get_plan("leader_partition"))
    travel = TimeTravel(trace)
    travel.at(trace.final_time)
    verdict = travel.why_halted()
    violation = verdict["contract"]
    assert isinstance(violation, ContractViolation)
    assert violation.contract == "single_leader"
    # Before the split brain the same key answers None.
    travel.at(violation.time - 1)
    assert travel.why_halted()["contract"] is None
