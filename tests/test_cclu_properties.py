"""Property-based tests of the CCLU compiler + CVM against a Python
reference evaluator: randomly generated programs must compute the same
values both ways."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cclu import compile_program
from repro.cvm import VmExecutor
from repro.mayflower import Node, ProcessState
from repro.params import Params
from repro.sim import World


def clu_div(a: int, b: int) -> int:
    """CLU integer division truncates toward zero."""
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


def clu_mod(a: int, b: int) -> int:
    return a - b * clu_div(a, b)


# --- random expression ASTs --------------------------------------------


def literals():
    return st.integers(min_value=-50, max_value=50).map(lambda v: ("lit", v))


def exprs(var_count: int, depth: int = 3):
    """Expression trees over variables v0..v{var_count-1}."""
    base = [literals()]
    if var_count:
        base.append(
            st.integers(min_value=0, max_value=var_count - 1).map(
                lambda i: ("var", i)
            )
        )
    leaf = st.one_of(*base)
    if depth == 0:
        return leaf
    sub = exprs(var_count, depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "%"]), sub, sub).map(
            lambda t: ("bin", *t)
        ),
        sub.map(lambda e: ("neg", e)),
    )


def render(expr) -> str:
    kind = expr[0]
    if kind == "lit":
        value = expr[1]
        return f"({value})" if value < 0 else str(value)
    if kind == "var":
        return f"v{expr[1]}"
    if kind == "neg":
        return f"(-{render(expr[1])})"
    _tag, op, left, right = expr
    return f"({render(left)} {op} {render(right)})"


class Divergent(Exception):
    """Reference evaluation hit a division by zero."""


def evaluate(expr, env) -> int:
    kind = expr[0]
    if kind == "lit":
        return expr[1]
    if kind == "var":
        return env[expr[1]]
    if kind == "neg":
        return -evaluate(expr[1], env)
    _tag, op, left, right = expr
    a = evaluate(left, env)
    b = evaluate(right, env)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0:
        raise Divergent
    if op == "/":
        return clu_div(a, b)
    return clu_mod(a, b)


def run_vm(source: str):
    world = World()
    node = Node(0, "n", world, Params())
    image = compile_program(source).link(node)
    process = node.spawn(VmExecutor(image, "main", []), name="main")
    world.run()
    return process, image


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_straightline_programs_match_reference(data):
    n_vars = data.draw(st.integers(min_value=1, max_value=5))
    n_stmts = data.draw(st.integers(min_value=1, max_value=8))
    env = {}
    lines = ["proc main()"]
    # Declare and initialize all variables.
    for i in range(n_vars):
        init = data.draw(st.integers(min_value=-20, max_value=20))
        env[i] = init
        rendered = f"({init})" if init < 0 else str(init)
        lines.append(f"  var v{i}: int := {rendered}")
    diverged = False
    # Random reassignments.
    for _ in range(n_stmts):
        target = data.draw(st.integers(min_value=0, max_value=n_vars - 1))
        expr = data.draw(exprs(n_vars, depth=2))
        lines.append(f"  v{target} := {render(expr)}")
        if not diverged:
            try:
                env[target] = evaluate(expr, env)
            except Divergent:
                diverged = True
    for i in range(n_vars):
        lines.append(f"  print v{i}")
    lines.append("end")
    source = "\n".join(lines)

    process, image = run_vm(source)
    if diverged:
        assert process.state == ProcessState.FAILED
        assert "zero" in str(process.failure)
    else:
        assert process.state == ProcessState.DONE, process.failure
        assert image.console == [str(env[i]) for i in range(n_vars)]


@given(
    st.integers(min_value=-5, max_value=15),
    st.integers(min_value=-5, max_value=15),
)
@settings(max_examples=40, deadline=None)
def test_for_loop_matches_reference(start, stop):
    source = f"""
proc main()
  var total: int := 0
  for i := ({start}) to ({stop}) do
    total := total + i
  end
  print total
end
"""
    process, image = run_vm(source)
    assert process.state == ProcessState.DONE
    expected = sum(range(start, stop + 1)) if stop >= start else 0
    assert image.console == [str(expected)]


@given(st.lists(st.integers(min_value=-30, max_value=30), max_size=8))
@settings(max_examples=40, deadline=None)
def test_array_sum_matches_reference(values):
    items = ", ".join(f"({v})" if v < 0 else str(v) for v in values)
    source = f"""
proc main()
  var a: array[int] := [{items}]
  var total: int := 0
  var i: int := 0
  while i < len(a) do
    total := total + a[i]
    i := i + 1
  end
  print total
  print len(a)
end
"""
    process, image = run_vm(source)
    assert process.state == ProcessState.DONE
    assert image.console == [str(sum(values)), str(len(values))]


@given(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_comparisons_and_conditionals_match(a, b):
    source = f"""
proc classify(x: int, y: int) returns string
  if x < y then
    return "lt"
  elseif x = y then
    return "eq"
  else
    return "gt"
  end
end
proc main()
  print classify({a}, {b})
  print {a} <= {b}
  print {a} ~= {b}
  print not ({a} > {b})
end
"""
    process, image = run_vm(source)
    assert process.state == ProcessState.DONE
    expected = "lt" if a < b else ("eq" if a == b else "gt")
    bools = ["true" if a <= b else "false",
             "true" if a != b else "false",
             "true" if not (a > b) else "false"]
    assert image.console == [expected] + bools


@given(st.integers(min_value=0, max_value=12))
@settings(max_examples=20, deadline=None)
def test_recursive_function_matches_reference(n):
    source = f"""
proc fac(n: int) returns int
  if n < 2 then
    return 1
  end
  return n * fac(n - 1)
end
proc main()
  print fac({n})
end
"""
    import math

    process, image = run_vm(source)
    assert image.console == [str(math.factorial(max(n, 1)) if n >= 0 else 1)]
