"""repro.contracts: DSL resolution, online/offline equivalence, goldens.

The acceptance bar for the contract layer is *backend agreement*: the
online :class:`~repro.contracts.online.ContractMonitor` (an obs-bus
subscriber riding beside the trace writer) and the offline
:func:`~repro.contracts.offline.check_trace` fold (over the sealed
trace) must produce **byte-identical** canonical
:class:`~repro.contracts.report.ContractReport` documents for every
run — checked here over a 3 seeds x {no-fault, chaos} x {ring, mesh}
grid of the golden echo scenario plus the replicated-KV scenario, and
pinned against committed goldens under ``tests/golden/``.
"""

import json
from pathlib import Path

import pytest

from repro import MS, SEC, FaultPlan, record_run
from repro.contracts import (
    CONTRACTS,
    UNIVERSAL_SET,
    ContractReport,
    ContractSet,
    ContractViolation,
    catalog,
    check_trace,
    contracts_for_trace,
    merge_reports,
    resolve_contracts,
)
from repro.contracts.dsl import ProbeContract, SINGLE_LEADER
from repro.contracts.online import ContractMonitor
from tests.golden_scenario import GOLDEN_NAMES, GOLDEN_PATH, build, plan

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
ECHO_REPORT_GOLDEN = GOLDEN_DIR / "contracts_echo_chaos_seed7.report.json"
KV_REPORT_GOLDEN = GOLDEN_DIR / "contracts_kv_partition_seed0.report.json"

GRID_SEEDS = (1, 2, 3)
GRID_PLANS = ("calm", "chaos")
GRID_TOPOLOGIES = ("ring", "mesh")


def record_echo(seed, plan_name, topology, contracts=UNIVERSAL_SET):
    """One grid cell: the golden echo recipe under a plan/topology."""
    return record_run(
        build, GOLDEN_NAMES, seed=seed,
        plan=plan() if plan_name == "chaos" else None,
        run_until=4 * SEC, topology=topology, contracts=contracts,
    )


# ----------------------------------------------------------------------
# Online / offline equivalence (the tentpole guarantee)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", GRID_SEEDS)
@pytest.mark.parametrize("plan_name", GRID_PLANS)
@pytest.mark.parametrize("topology", GRID_TOPOLOGIES)
def test_online_offline_reports_are_byte_identical(seed, plan_name, topology):
    trace = record_echo(seed, plan_name, topology)
    online = trace.contract_report
    offline = check_trace(trace, UNIVERSAL_SET)
    assert online.canonical() == offline.canonical()


def test_equivalence_holds_for_the_kv_split_brain():
    from repro.campaign.scenarios import get_plan, get_scenario

    scenario = get_scenario("kv")
    trace = record_run(
        scenario.build, list(scenario.names), seed=0,
        run_until=scenario.run_until, plan=get_plan("leader_partition"),
        contracts=scenario.contracts,
    )
    online = trace.contract_report
    offline = check_trace(trace, scenario.contracts)
    assert online.canonical() == offline.canonical()
    assert online.verdicts["single_leader"] == "fail"
    assert not online.ok


def test_equivalence_survives_a_save_load_round_trip(tmp_path):
    from repro.replay import Trace

    trace = record_echo(7, "chaos", "ring")
    path = tmp_path / "echo.trace.bin"
    trace.save(path, format="binary")
    reread = Trace.load(path)
    assert (check_trace(reread, UNIVERSAL_SET).canonical()
            == trace.contract_report.canonical())


# ----------------------------------------------------------------------
# Committed goldens: reports must not drift silently
# ----------------------------------------------------------------------


def test_echo_golden_report_matches_the_committed_file():
    from repro.replay import Trace

    trace = Trace.load(GOLDEN_PATH)
    report = check_trace(trace, UNIVERSAL_SET)
    committed = json.loads(ECHO_REPORT_GOLDEN.read_text())
    assert json.loads(report.canonical()) == committed, (
        "contract report over the committed golden trace drifted; if the "
        "change is intentional, regenerate with tools/regen_goldens.py"
    )


def test_kv_golden_report_matches_the_committed_file():
    from repro.campaign.scenarios import get_plan, get_scenario

    scenario = get_scenario("kv")
    trace = record_run(
        scenario.build, list(scenario.names), seed=0,
        run_until=scenario.run_until, plan=get_plan("leader_partition"),
    )
    report = check_trace(trace, scenario.contracts)
    committed = json.loads(KV_REPORT_GOLDEN.read_text())
    assert json.loads(report.canonical()) == committed, (
        "KV contract report drifted; if the change is intentional, "
        "regenerate with tools/regen_goldens.py"
    )


# ----------------------------------------------------------------------
# DSL resolution and the report record
# ----------------------------------------------------------------------


def test_resolve_contracts_accepts_names_sets_and_none():
    assert resolve_contracts(None) is UNIVERSAL_SET
    assert resolve_contracts(UNIVERSAL_SET) is UNIVERSAL_SET
    single = resolve_contracts("single_leader")
    assert single.names() == ["single_leader"]
    pair = resolve_contracts(["single_leader", "clock_monotonicity"])
    assert pair.names() == ["single_leader", "clock_monotonicity"]
    assert resolve_contracts(SINGLE_LEADER).names() == ["single_leader"]
    with pytest.raises(KeyError):
        resolve_contracts("no_such_contract")


def test_catalog_lists_every_shipped_contract():
    rows = catalog()
    assert sorted(row["name"] for row in rows) == sorted(CONTRACTS)
    assert all(row["description"] for row in rows)


def test_contracts_for_trace_prefers_the_campaign_scenario_set():
    from repro.campaign.scenarios import get_scenario

    plain = record_echo(1, "calm", "ring", contracts=None)
    assert contracts_for_trace(plain) is UNIVERSAL_SET
    scenario = get_scenario("kv")
    tagged = record_run(
        scenario.build, list(scenario.names), seed=0, run_until=200 * MS,
        meta={"campaign": {"scenario": "kv"}},
    )
    assert contracts_for_trace(tagged) is scenario.contracts
    unknown = record_run(
        scenario.build, list(scenario.names), seed=0, run_until=200 * MS,
        meta={"campaign": {"scenario": "gone"}},
    )
    assert contracts_for_trace(unknown) is UNIVERSAL_SET


def test_probe_requires_chaining_skips_dependents():
    base = ProbeContract(
        name="base", description="always fails",
        check=lambda facts: "base broke",
    )
    dependent = ProbeContract(
        name="dependent", description="needs base",
        check=lambda facts: None, requires=("base",),
    )
    report = ContractSet(name="t", contracts=(base, dependent)) \
        .check_probes(cluster=None, probes={})
    assert report.verdicts == {"base": "fail", "dependent": "skipped"}
    assert report.messages() == ["base broke"]


def test_merge_reports_orders_verdicts_and_concatenates_violations():
    first = ContractReport(verdicts={"b": "pass"}, violations=(), events=0)
    second = ContractReport(
        verdicts={"a": "fail"},
        violations=(ContractViolation(contract="a", message="broke"),),
        events=42,
    )
    merged = merge_reports(first, second, order=["a", "b"])
    assert list(merged.verdicts) == ["a", "b"]
    assert merged.events == 42
    assert not merged.ok
    assert merged.first_violation().message == "broke"


def test_violation_evidence_cites_trace_lines():
    trace = record_echo(7, "chaos", "ring")
    report = check_trace(trace, UNIVERSAL_SET)
    lines = set(trace.lines())
    for violation in report.violations:
        for cited in violation.evidence:
            assert cited in lines


# ----------------------------------------------------------------------
# The monitor is an ordinary dormant-path subscriber
# ----------------------------------------------------------------------


def test_contract_violated_stays_out_of_the_recorded_stream():
    """Judgments are not facts: recorders never see ContractViolated."""
    from repro.obs import events as ev

    assert "ContractViolated" not in ev.__all__
    trace = record_echo(7, "chaos", "ring")
    assert all(event.type != "ContractViolated" for event in trace.events)


def test_monitor_does_not_perturb_the_event_stream():
    bare = record_echo(5, "chaos", "ring", contracts=None)
    watched = record_echo(5, "chaos", "ring")
    assert bare.fingerprint() == watched.fingerprint()


def test_monitor_emits_typed_violation_events():
    from repro.campaign.scenarios import get_plan, get_scenario
    from repro.cluster import Cluster
    from repro.faults.plan import Nemesis
    from repro.obs import events as ev

    scenario = get_scenario("kv")
    cluster = Cluster(names=list(scenario.names), seed=0)
    monitor = ContractMonitor(cluster.world.bus, scenario.contracts)
    seen = []
    cluster.world.bus.subscribe(ev.ContractViolated, seen.append)
    scenario.build(cluster)
    Nemesis(cluster, get_plan("leader_partition"))
    cluster.run(until=scenario.run_until)
    assert seen, "split brain must surface as a live ContractViolated"
    assert seen[0].contract == "single_leader"
    assert monitor.report().verdicts["single_leader"] == "fail"
