"""Unit tests for ``repro.kernel``: the timing wheel, the two event
cores' behavioral identity, and the tombstone-compaction bounds."""

import random

import pytest

from repro.kernel import EventCore, HeapEventCore, TimingWheel, make_core
from repro.kernel.core import COMPACT_SLACK, SimulationError
from repro.sim.units import FOREVER
from repro.sim.world import World


def _noop():
    pass


# ----------------------------------------------------------------------
# TimingWheel
# ----------------------------------------------------------------------

def _entry(time, seq):
    return (time, seq, None)


class TestTimingWheel:
    def test_pops_in_key_order_across_buckets(self):
        wheel = TimingWheel(bucket_bits=4, slot_bits=6)  # 16 us x 64
        rng = random.Random(1)
        entries = [_entry(rng.randrange(0, 10_000), seq)
                   for seq in range(500)]
        for entry in entries:
            wheel.push(entry)
        assert len(wheel) == 500
        popped = [wheel.pop() for _ in range(500)]
        assert popped == sorted(entries)
        assert wheel.pop() is None

    def test_ties_break_by_seq(self):
        wheel = TimingWheel()
        for seq in (3, 1, 2):
            wheel.push(_entry(777, seq))
        assert [wheel.pop()[1] for _ in range(3)] == [1, 2, 3]

    def test_overflow_migrates_in_order(self):
        wheel = TimingWheel(bucket_bits=4, slot_bits=4)  # 256 us horizon
        horizon = 16 << 4
        near = [_entry(t, 100 + t) for t in (5, 80, 200)]
        far = [_entry(horizon * k + 3, k) for k in (1, 2, 5)]
        for entry in far + near:
            wheel.push(entry)
        assert len(wheel.overflow) == len(far)
        popped = [wheel.pop() for _ in range(len(near) + len(far))]
        assert popped == sorted(near + far)

    def test_push_behind_cursor_is_not_lost(self):
        wheel = TimingWheel(bucket_bits=4, slot_bits=6)
        wheel.push(_entry(9_000, 1))
        assert wheel.pop() == _entry(9_000, 1)  # cursor is far ahead now
        wheel.push(_entry(5, 2))  # legal: earliest *pending* moved back
        assert wheel.pop() == _entry(5, 2)

    def test_peek_does_not_remove(self):
        wheel = TimingWheel()
        wheel.push(_entry(42, 1))
        assert wheel.peek() == _entry(42, 1)
        assert wheel.peek() == _entry(42, 1)
        assert len(wheel) == 1
        assert wheel.pop() == _entry(42, 1)
        assert wheel.peek() is None

    def test_rebuild_and_clear(self):
        wheel = TimingWheel()
        for seq in range(20):
            wheel.push(_entry(seq * 700, seq))
        survivors = [entry for entry in wheel if entry[1] % 2 == 0]
        wheel.rebuild(survivors)
        assert len(wheel) == len(survivors)
        assert sorted(wheel) == sorted(survivors)
        wheel.clear()
        assert len(wheel) == 0 and wheel.pop() is None


# ----------------------------------------------------------------------
# Behavioral identity: EventCore vs HeapEventCore
# ----------------------------------------------------------------------

def test_cores_pop_identically_under_random_churn():
    """Both engines implement the same total order on (time, seq); a
    mirrored random op sequence must produce identical pops, peeks,
    and windows.  Times never go backwards past a popped event — the
    World facade guarantees that invariant (schedule validation)."""
    rng = random.Random(20260808)
    cores = (make_core("wheel"), make_core("heap"))
    mirrored = [[], []]  # live handles, same index on both sides
    floor = 0  # last popped time: no schedules before this
    for _ in range(6000):
        roll = rng.random()
        if roll < 0.55 or not mirrored[0]:
            # Times span buckets, ties, and the overflow horizon.
            delay = rng.choice((0, 1, rng.randrange(1, 3000),
                                rng.randrange(1, 4_000_000)))
            node = rng.choice((None, 0, 1, 2, 3, 4))
            for side, core in enumerate(cores):
                mirrored[side].append(core.schedule_at(
                    floor + delay, _noop, (), node=node))
        elif roll < 0.70:
            victim = rng.randrange(len(mirrored[0]))
            for side in (0, 1):
                mirrored[side].pop(victim).cancel()
        elif roll < 0.85:
            popped = [core.pop_next() for core in cores]
            keys = [(h.time, h.seq, h.node) if h else None for h in popped]
            assert keys[0] == keys[1]
            if popped[0] is not None:
                floor = popped[0].time
                for side, handle in enumerate(popped):
                    if handle in mirrored[side]:
                        mirrored[side].remove(handle)
                    handle.cancel()
        elif roll < 0.93:
            boundary = rng.choice((None, floor + rng.randrange(0, 10_000)))
            assert (cores[0].peek_next_time(boundary)
                    == cores[1].peek_next_time(boundary))
        else:
            node = rng.randrange(5)
            lookahead = rng.choice((100, 3500))
            assert (cores[0].window_for(node, lookahead)
                    == cores[1].window_for(node, lookahead))
    while True:
        popped = [core.pop_next() for core in cores]
        keys = [(h.time, h.seq, h.node) if h else None for h in popped]
        assert keys[0] == keys[1]
        if popped[0] is None:
            break
    assert cores[0].peek_next_time() == cores[1].peek_next_time() == FOREVER


def test_cores_agree_on_mass_cancel_and_survivors():
    cores = (make_core("wheel"), make_core("heap"))
    for core in cores:
        for k in range(40):
            core.schedule_at(100 + k, _noop, (), node=k % 3)
        core.schedule_at(50, _noop, (), node=1, survives_crash=True)
    counts = [core.cancel_node_events(1) for core in cores]
    assert counts[0] == counts[1] == 13
    order = [[], []]
    for side, core in enumerate(cores):
        while True:
            handle = core.pop_next()
            if handle is None:
                break
            order[side].append((handle.time, handle.seq))
            handle.cancel()
    assert order[0] == order[1]
    assert order[0][0] == (50, 41)  # the survivor still fires first


# ----------------------------------------------------------------------
# Tombstone-compaction bounds (the mass-crash regression)
# ----------------------------------------------------------------------

def _stored_bound_holds(core) -> bool:
    return core.stored_count() <= 2 * core.live + COMPACT_SLACK


def test_mass_crash_never_leaves_queue_dominated_by_tombstones():
    """After a mass crash the main queue must not hold more than twice
    the live entries (plus slack): the sweep has to fire on the bulk
    path, not only on accumulated single cancels."""
    core = EventCore()
    for node in range(8):
        for k in range(2000):
            core.schedule_at(1000 + k, _noop, (), node=node)
    assert core.stored_count() == 16_000
    for node in range(7):  # crash all but one node
        core.cancel_node_events(node)
        assert _stored_bound_holds(core), (
            f"after crashing node {node}: stored={core.stored_count()} "
            f"live={core.live}"
        )
    assert core.live == 2000


def test_repeated_single_cancels_trigger_compaction():
    """The satellite fix: a node that churns timers one cancel at a
    time (schedule + cancel per RPC) must compact too — the threshold
    cannot be reachable only from the bulk-crash path."""
    core = EventCore()
    handles = [core.schedule_at(10_000 + k, _noop, (), node=0)
               for k in range(5000)]
    keepers = core.schedule_at(20_000, _noop, (), node=0)
    for handle in handles:
        handle.cancel()
        assert _stored_bound_holds(core)
    # The node index compacted down with the churn instead of dragging
    # five thousand dead entries.
    assert len(core.node_handles(0)) <= 2 * core.live + COMPACT_SLACK
    assert not keepers.cancelled and core.live == 1


def test_interleaved_schedule_cancel_churn_stays_bounded():
    core = EventCore()
    rng = random.Random(7)
    live = []
    for k in range(20_000):
        live.append(core.schedule_at(1000 + k, _noop, (),
                                     node=k % 4))
        if len(live) > 32:
            live.pop(rng.randrange(len(live))).cancel()
        assert _stored_bound_holds(core)


# ----------------------------------------------------------------------
# Facade plumbing
# ----------------------------------------------------------------------

def test_make_core_registry():
    assert isinstance(make_core("wheel"), EventCore)
    assert isinstance(make_core("heap"), HeapEventCore)
    with pytest.raises(SimulationError):
        make_core("btree")


def test_world_kernel_selection(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert isinstance(World(seed=0).kernel, EventCore)
    assert isinstance(World(seed=0, kernel="heap").kernel, HeapEventCore)
    monkeypatch.setenv("REPRO_KERNEL", "heap")
    assert isinstance(World(seed=0).kernel, HeapEventCore)
    monkeypatch.setenv("REPRO_KERNEL", "wheel")
    assert isinstance(World(seed=0).kernel, EventCore)


def test_world_runs_identically_on_both_kernels():
    def drive(kernel):
        world = World(seed=3, kernel=kernel)
        seen = []

        def hop(depth):
            seen.append((world.now, depth))
            if depth < 40:
                world.schedule(137 * (depth % 5) + 1, hop, depth + 1,
                               node=depth % 3)

        world.schedule_at(10, hop, 0, node=0)
        world.run(until=100_000)
        world.close()
        return seen

    assert drive("wheel") == drive("heap")
