"""Chaos soak: seeded nemesis schedules over an exactly-once workload.

Marked ``chaos`` and excluded from the tier-1 run (see pyproject's
addopts); CI runs it in a dedicated job with ``-m chaos``.

The workload is 30 exactly-once calls whose values are distinct powers
of two, so the client's printed total is a bitmask identifying exactly
which calls succeeded — cross-checkable bit-by-bit against the
server-side execution log.  Invariants, per schedule:

* the server never executes one call twice (the duplicate/retransmit
  dedup and the stale-rejection on reboot hold);
* every call reaches a verdict (success or failure) — the client
  finishes all 30;
* every success the client counted was really executed (its bit is in
  the server's log);
* the attached debugger keeps polling throughout and never wedges,
  reattaching after reboots.
"""

import pytest

from repro import MS, SEC, AgentError, Cluster, FaultPlan, Nemesis, Pilgrim

pytestmark = pytest.mark.chaos

#: 30 calls with values 1, 2, 4, ... 2^29: the printed total is the
#: bitmask of the successful subset.
CLIENT_30 = """
proc main()
  var total: int := 0
  var done: int := 0
  var p: int := 1
  for i := 1 to 30 do
    var r: int := remote svc.echo(p)
    if failed(r) then
      done := done + 1
    else
      total := total + r
      done := done + 1
    end
    p := p * 2
  end
  print total
  print done
end
"""


def _soak(plan: FaultPlan, seed: int = 7):
    cluster = Cluster(names=["client", "server", "debugger"], seed=seed)
    executed: list[int] = []

    def echo(ctx, x):
        executed.append(x)
        return x

    cluster.rpc("server").export_native("svc", {"echo": echo})
    client_image = cluster.load_program(CLIENT_30, "client")
    cluster.spawn_vm("client", client_image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client", "server")
    Nemesis(cluster, plan)

    # Drive the run in slices, polling the debugger between them; the
    # debugger must survive the whole schedule without wedging.
    polls = 0
    for _ in range(40):
        cluster.run_for(200 * MS)
        try:
            survey = dbg.all_processes()
        except AgentError:
            # A rebooted node rejected the stale session id: re-adopt it
            # and retry the poll.
            for address in list(dbg.connected_nodes):
                node = cluster.nodes[address]
                if dbg.node_epochs.get(address, 0) != node.epoch:
                    dbg.reattach(address)
            survey = dbg.all_processes()
        assert isinstance(survey["nodes"], dict)
        polls += 1
        if len(client_image.console) == 2:
            break
    cluster.run(until=cluster.world.now + 5 * SEC)

    assert polls > 0
    assert len(client_image.console) == 2, "client never finished"
    total, done = int(client_image.console[0]), int(client_image.console[1])
    assert done == 30, "some call reached no verdict"
    # No duplicated server executions: all logged values distinct.
    assert len(executed) == len(set(executed))
    # Every success the client saw is backed by a real execution.
    executed_mask = sum(set(executed))
    assert total & ~executed_mask == 0
    return cluster, total, executed


def test_soak_crash_and_reboot():
    plan = (FaultPlan()
            .crash(at=100 * MS, node="server")
            .reboot(at=300 * MS, node="server")
            .crash(at=900 * MS, node="server")
            .reboot(at=1100 * MS, node="server"))
    cluster, total, executed = _soak(plan)
    assert cluster.node("server").epoch == 2
    # The workload rode through two reboots and still made progress.
    assert total > 0


def test_soak_partition_and_heal():
    plan = (FaultPlan()
            .partition(at=80 * MS, groups=[[0, 2], [1]], duration=180 * MS)
            .partition(at=600 * MS, groups=[[0, 2], [1]], duration=120 * MS))
    cluster, total, executed = _soak(plan)
    # Both cuts healed inside the retransmission budget: nothing is lost.
    assert total == 2**30 - 1
    assert len(executed) == 30
    assert cluster.ring.total_nacked > 0


def test_soak_delay_and_duplicate():
    plan = (FaultPlan()
            .delay(at=50 * MS, duration=1 * SEC, extra=4 * MS, jitter=2 * MS)
            .duplicate(at=50 * MS, duration=1500 * MS, probability=0.5)
            .reorder(at=300 * MS, duration=500 * MS, probability=0.3))
    cluster, total, executed = _soak(plan)
    # Delay/duplication/reordering never lose or double anything.
    assert total == 2**30 - 1
    assert len(executed) == 30


def test_soak_schedules_are_deterministic():
    plan = (FaultPlan()
            .crash(at=100 * MS, node="server")
            .reboot(at=300 * MS, node="server")
            .delay(at=400 * MS, duration=600 * MS, extra=3 * MS, jitter=1 * MS))
    _, total_a, executed_a = _soak(plan, seed=21)
    _, total_b, executed_b = _soak(plan, seed=21)
    assert total_a == total_b
    assert executed_a == executed_b
