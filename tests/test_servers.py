"""Tests for the debug-aware shared servers (paper §6)."""

import pytest

from repro import MS, SEC, Cluster, Pilgrim
from repro.mayflower.syscalls import Sleep
from repro.rpc.runtime import remote_call
from repro.servers import AotMan, FileServer, NameServer, ResourceManager
from repro.servers.leases import LeaseTable
from repro.servers.strategies import make_strategy


def make_cluster(**kwargs):
    return Cluster(names=["client", "server", "debugger"], **kwargs)


# ----------------------------------------------------------------------
# Lease machinery
# ----------------------------------------------------------------------


def test_lease_expires_without_refresh():
    cluster = make_cluster()
    table = LeaseTable(cluster.node("server"))
    lease = table.create(0, 50 * MS, make_strategy("naive"))
    cluster.run_for(200 * MS)
    assert not lease.alive
    assert table.expired and table.expired[0] is lease
    assert table.live_count() == 0


def test_lease_survives_with_refreshes():
    cluster = make_cluster()
    table = LeaseTable(cluster.node("server"))
    lease = table.create(0, 50 * MS, make_strategy("naive"))

    def refresher(node):
        for _ in range(10):
            yield Sleep(30 * MS)
            lease.refresh()

    cluster.node("server").spawn(refresher(cluster.node("server")), name="refresher")
    cluster.run_for(250 * MS)
    assert lease.alive
    cluster.run_for(300 * MS)
    assert not lease.alive  # refresher stopped; lease eventually expired


def test_lease_release():
    cluster = make_cluster()
    table = LeaseTable(cluster.node("server"))
    lease = table.create(0, 1 * SEC, make_strategy("naive"))
    cluster.run_for(10 * MS)
    table.drop(lease)
    cluster.run_for(10 * MS)
    assert not lease.alive
    assert table.expired == []  # released, not expired


# ----------------------------------------------------------------------
# Strategies under breakpoints
# ----------------------------------------------------------------------

SPIN = "proc main()\n  while true do\n    sleep(5000)\n  end\nend"


def lease_with_client(strategy_name, timeout=100 * MS, seed=0, connect=True):
    """A lease held for a VM client on node 'client'; returns everything
    needed to breakpoint the client and watch the lease."""
    cluster = make_cluster(seed=seed)
    image = cluster.load_program(SPIN, "client")
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    if connect:
        dbg.connect("client")
    strategy = make_strategy(strategy_name)
    table = LeaseTable(cluster.node("server"))
    lease = table.create(
        cluster.node("client").node_id, timeout, strategy
    )
    return cluster, dbg, table, lease, strategy


@pytest.mark.parametrize("strategy_name", ["naive", "fig3", "fig4"])
def test_lease_expires_for_undisturbed_client(strategy_name):
    cluster, dbg, table, lease, strategy = lease_with_client(strategy_name)
    cluster.run_for(600 * MS)
    assert not lease.alive  # never refreshed, client never breakpointed


def test_ignore_strategy_extends_while_session_open():
    """§6.2 'Ignoring long timeouts': the lease is extended indefinitely
    while the client is under a debugger, even without breakpoints."""
    cluster, dbg, table, lease, strategy = lease_with_client("ignore")
    cluster.run_for(600 * MS)
    assert lease.alive
    assert strategy.extensions >= 1
    dbg.disconnect()
    cluster.run_for(600 * MS)
    assert not lease.alive  # session over: timeouts bite again


def test_ignore_strategy_expires_without_debugger():
    cluster, dbg, table, lease, strategy = lease_with_client(
        "ignore", connect=False
    )
    cluster.run_for(600 * MS)
    assert not lease.alive


def test_naive_lease_dies_during_breakpoint():
    cluster, dbg, table, lease, strategy = lease_with_client("naive")
    dbg.halt("client")
    dbg.run_for(300 * MS)  # longer than the 100 ms lease
    dbg.resume("client")
    assert not lease.alive


@pytest.mark.parametrize("strategy_name", ["fig3", "fig4", "ignore"])
def test_debug_aware_lease_survives_breakpoint(strategy_name):
    cluster, dbg, table, lease, strategy = lease_with_client(strategy_name)
    cluster.run_for(20 * MS)
    dbg.halt("client")
    dbg.run_for(300 * MS)  # lease timeout passes entirely inside the halt
    dbg.resume("client")
    cluster.run_for(20 * MS)
    assert lease.alive, f"{strategy_name} lost the lease during a breakpoint"
    assert strategy.extensions >= 1
    if strategy_name != "ignore":
        # After resume the client's logical clock runs again; with no
        # refreshes the lease expires in its remaining logical time.
        cluster.run_for(500 * MS)
        assert not lease.alive


def test_fig3_pays_one_status_rpc_up_front():
    cluster, dbg, table, lease, strategy = lease_with_client("fig3")
    cluster.run_for(600 * MS)  # expire undisturbed
    assert not lease.alive
    # Fig3 calls get_debuggee_status at wait start AND on expiry.
    assert strategy.status_rpcs == 2
    assert strategy.convert_rpcs == 0


def test_fig4_pays_nothing_until_expiry():
    cluster, dbg, table, lease, strategy = lease_with_client("fig4")
    cluster.run_for(40 * MS)  # lease running, not yet expired
    assert strategy.status_rpcs == 0
    cluster.run_for(600 * MS)
    assert not lease.alive
    assert strategy.status_rpcs == 1  # only at expiry
    assert strategy.convert_rpcs == 0  # client was never breakpointed


def test_fig4_uses_convert_debuggee_time_after_breakpoint():
    cluster, dbg, table, lease, strategy = lease_with_client("fig4")
    cluster.run_for(20 * MS)
    dbg.halt("client")
    dbg.run_for(250 * MS)
    dbg.resume("client")
    cluster.run_for(600 * MS)
    assert strategy.convert_rpcs >= 1
    assert strategy.extensions >= 1


def test_extension_is_precise_not_unbounded():
    """Fig3 extends by exactly the unserved logical remainder: after the
    halt the lease lives for about (timeout - time served before halt)."""
    cluster, dbg, table, lease, strategy = lease_with_client(
        "fig3", timeout=200 * MS
    )
    cluster.run_for(50 * MS)  # ~50ms of the lease served
    dbg.halt("client")
    dbg.run_for(1 * SEC)
    dbg.resume("client")
    resumed_at = cluster.world.now
    # Lease should now expire after roughly the remaining ~150 ms.
    cluster.run_for(80 * MS)
    assert lease.alive
    cluster.run_for(400 * MS)
    assert not lease.alive
    lived_after_resume = lease.expired_at - resumed_at
    assert 100 * MS < lived_after_resume < 300 * MS


# ----------------------------------------------------------------------
# Resource Manager
# ----------------------------------------------------------------------


def test_resource_manager_allocate_refresh_release():
    cluster = make_cluster()
    manager = ResourceManager(
        cluster, "server", ["m1", "m2"], strategy="naive", timeout=100 * MS
    )
    results = {}

    def client(node):
        allocation = yield from remote_call(node.rpc, "resman", "allocate")
        results["machine"] = allocation.fields["machine"]
        for _ in range(5):
            yield Sleep(50 * MS)
            ok = yield from remote_call(
                node.rpc, "resman", "refresh", [allocation.fields["machine"]]
            )
            results["refresh"] = ok
        ok = yield from remote_call(
            node.rpc, "resman", "release", [allocation.fields["machine"]]
        )
        results["release"] = ok

    node = cluster.node("client")
    node.spawn(client(node), name="client")
    cluster.run_for(2 * SEC)
    assert results["machine"] in ("m1", "m2")
    assert results["refresh"] is True
    assert results["release"] is True
    assert sorted(manager.free) == ["m1", "m2"]
    assert manager.expired_allocations == 0


def test_resource_manager_reclaims_on_expiry():
    cluster = make_cluster()
    manager = ResourceManager(
        cluster, "server", ["m1"], strategy="naive", timeout=80 * MS
    )
    results = {}

    def client(node):
        allocation = yield from remote_call(node.rpc, "resman", "allocate")
        results["machine"] = allocation.fields["machine"]
        # never refreshes

    node = cluster.node("client")
    node.spawn(client(node), name="client")
    cluster.run_for(1 * SEC)
    assert results["machine"] == "m1"
    assert manager.expired_allocations == 1
    assert manager.free == ["m1"]


def test_resource_manager_contention_reclaim():
    """§6.2: a debugged client's extended lease is reclaimed the moment a
    client outside the debugging session wants the scarce resource."""
    cluster = Cluster(names=["client", "other", "server", "debugger"])
    manager = ResourceManager(
        cluster, "server", ["only"], strategy="ignore", timeout=100 * MS
    )
    image = cluster.load_program(SPIN, "client")
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client")
    taken = {}

    def debugged_client(node):
        allocation = yield from remote_call(node.rpc, "resman", "allocate")
        taken["client"] = allocation.fields["machine"]

    node = cluster.node("client")
    node.spawn(debugged_client(node), name="grabber")
    cluster.run_for(100 * MS)
    assert taken["client"] == "only"
    dbg.halt("client")  # the holder is now breakpointed
    dbg.run_for(500 * MS)  # its lease is being extended indefinitely

    def other_client(node):
        allocation = yield from remote_call(node.rpc, "resman", "allocate")
        taken["other"] = allocation.fields

    other = cluster.node("other")
    other.spawn(other_client(other), name="other")
    cluster.run_for(1 * SEC)
    assert taken["other"]["ok"] is True
    assert taken["other"]["machine"] == "only"
    assert manager.reclaimed_by_contention == 1


# ----------------------------------------------------------------------
# AOTMan
# ----------------------------------------------------------------------


def test_tuid_expires_without_refresh():
    cluster = make_cluster()
    aotman = AotMan(cluster, "server", strategy="naive", lifetime=80 * MS)
    got = {}

    def client(node):
        tuid = yield from remote_call(node.rpc, "aotman", "issue", ["read"])
        got["tuid"] = tuid.fields["id"]

    node = cluster.node("client")
    node.spawn(client(node), name="client")
    cluster.run_for(1 * SEC)
    assert not aotman.is_valid(got["tuid"])
    assert aotman.expired_tuids == 1


def test_tuid_kept_alive_by_refresh_then_breakpoint_kills_naive():
    cluster = make_cluster()
    aotman = AotMan(cluster, "server", strategy="naive", lifetime=120 * MS)
    image = cluster.load_program(
        """
var tuid: int := 0
proc main()
  var t: any := remote aotman.issue("read")
  tuid := t.id
  while true do
    sleep(50000)
    var ok: bool := remote aotman.refresh(tuid)
  end
end
""",
        "client",
    )
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client")
    cluster.run_for(500 * MS)
    tuid = image.globals["tuid"]
    assert aotman.is_valid(tuid)  # refresh loop is doing its job
    dbg.halt("client")
    dbg.run_for(500 * MS)  # refreshes stop while halted
    dbg.resume("client")
    assert not aotman.is_valid(tuid)  # naive AOTMan dropped it


def test_tuid_survives_breakpoint_with_fig4():
    cluster = make_cluster()
    aotman = AotMan(cluster, "server", strategy="fig4", lifetime=120 * MS)
    image = cluster.load_program(
        """
var tuid: int := 0
proc main()
  var t: any := remote aotman.issue("read")
  tuid := t.id
  while true do
    sleep(50000)
    var ok: bool := remote aotman.refresh(tuid)
  end
end
""",
        "client",
    )
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client")
    cluster.run_for(500 * MS)
    tuid = image.globals["tuid"]
    assert aotman.is_valid(tuid)
    dbg.halt("client")
    dbg.run_for(500 * MS)
    assert aotman.is_valid(tuid)  # survived the whole halt
    dbg.resume("client")
    cluster.run_for(500 * MS)
    assert aotman.is_valid(tuid)  # refresh loop resumed and keeps it alive


# ----------------------------------------------------------------------
# File server date conversion
# ----------------------------------------------------------------------


def test_fileserver_read_write():
    cluster = make_cluster()
    server = FileServer(cluster, "server")
    results = {}

    def client(node):
        yield from remote_call(node.rpc, "filesvc", "write", ["a.txt", "hello"])
        record = yield from remote_call(node.rpc, "filesvc", "read", ["a.txt"])
        results["read"] = record.fields

    node = cluster.node("client")
    node.spawn(client(node), name="client")
    cluster.run_for(1 * SEC)
    assert results["read"]["ok"] is True
    assert results["read"]["data"] == "hello"
    assert results["read"]["modified"] > 0


def test_fileserver_converts_dates_for_debugged_client():
    """§6.2: a debugged client sees modification dates in its own logical
    time scale."""
    cluster = make_cluster()
    server = FileServer(cluster, "server", convert_dates=True)
    image = cluster.load_program(SPIN, "client")
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client")

    # Accumulate ~400 ms of halt time on the client.
    cluster.run_for(50 * MS)
    dbg.halt("client")
    dbg.run_for(400 * MS)
    dbg.resume("client")

    # A file modified NOW (after the halt) in real time.
    server.put("data.txt", "contents", cluster.node("server").clock.real_now())
    results = {}

    def reader(node):
        record = yield from remote_call(node.rpc, "filesvc", "read", ["data.txt"])
        results["modified"] = record.fields["modified"]
        results["client_now"] = node.clock.logical_now()

    node = cluster.node("client")
    node.spawn(reader(node), name="reader")
    cluster.run_for(1 * SEC)
    assert server.conversions == 1
    # The converted date is consistent with the client's logical clock:
    # it must not lie in the client's logical future.
    assert results["modified"] <= results["client_now"]
    # And it reflects the ~400 ms of interruption.
    delta = cluster.node("client").clock.delta
    assert delta > 300 * MS


def test_fileserver_no_conversion_for_undebugged_client():
    cluster = make_cluster()
    server = FileServer(cluster, "server", convert_dates=True)
    server.put("x", "y", 12345)
    results = {}

    def reader(node):
        record = yield from remote_call(node.rpc, "filesvc", "read", ["x"])
        results["modified"] = record.fields["modified"]

    node = cluster.node("client")
    node.spawn(reader(node), name="reader")
    cluster.run_for(1 * SEC)
    assert results["modified"] == 12345
    assert server.conversions == 0


def test_fileserver_missing_file():
    cluster = make_cluster()
    FileServer(cluster, "server")
    results = {}

    def reader(node):
        record = yield from remote_call(node.rpc, "filesvc", "read", ["nope"])
        results["ok"] = record.fields["ok"]

    node = cluster.node("client")
    node.spawn(reader(node), name="reader")
    cluster.run_for(1 * SEC)
    assert results["ok"] is False


# ----------------------------------------------------------------------
# Name server
# ----------------------------------------------------------------------


def test_nameserver_lookup():
    cluster = make_cluster()
    NameServer(cluster, "server")
    FileServer(cluster, "server")
    results = {}

    def client(node):
        results["filesvc"] = yield from remote_call(
            node.rpc, "namesvc", "lookup", ["filesvc"]
        )
        results["ghost"] = yield from remote_call(
            node.rpc, "namesvc", "lookup", ["ghost"]
        )
        services = yield from remote_call(node.rpc, "namesvc", "services")
        results["services"] = services.items

    node = cluster.node("client")
    node.spawn(client(node), name="client")
    cluster.run_for(1 * SEC)
    assert results["filesvc"] == cluster.node("server").node_id
    assert results["ghost"] == -1
    assert "namesvc" in results["services"]
