"""Tests for repro.live — Pilgrim's method against real Python threads.

These use wall-clock time and real sockets (localhost); timings are kept
coarse so they are robust on loaded machines.
"""

import threading
import time

import pytest

from repro.live import LiveAgent, LiveDebugger, LiveDebuggerError
from repro.live.agent import NO_DEBUGGER


class Counters:
    """The target program: two counting threads and a shared dict."""

    def __init__(self, agent: LiveAgent):
        self.agent = agent
        self.values = {"a": 0, "b": 0}
        self.stop = threading.Event()
        self.threads = []

    def loop(self, key: str) -> None:
        self.agent.adopt_current_thread()
        count = 0
        while not self.stop.is_set():
            self.agent.checkpoint()
            count += 1
            self.values[key] = count  # BREAK HERE
            time.sleep(0.001)
        self.agent.release_current_thread()

    def start(self) -> None:
        for key in ("a", "b"):
            thread = threading.Thread(
                target=self.loop, args=(key,), name=f"counter-{key}"
            )
            thread.start()
            self.threads.append(thread)

    def shutdown(self) -> None:
        self.stop.set()
        for thread in self.threads:
            thread.join(timeout=5)


BREAK_LINE = None  # computed below


def _break_line() -> int:
    import inspect

    source, start = inspect.getsourcelines(Counters.loop)
    for offset, line in enumerate(source):
        if "BREAK HERE" in line:
            return start + offset
    raise AssertionError("marker not found")


@pytest.fixture
def target():
    agent = LiveAgent()
    program = Counters(agent)
    program.start()
    time.sleep(0.05)
    yield agent, program
    program.stop.set()
    try:
        agent._end_halt()
    except Exception:
        pass
    program.shutdown()
    agent.shutdown()


def test_attach_lists_threads_and_detach_leaves_running(target):
    agent, program = target
    dbg = LiveDebugger(agent.address)
    threads = dbg.connect()
    names = {t["name"] for t in threads}
    assert {"counter-a", "counter-b"} <= names
    dbg.disconnect()
    before = dict(program.values)
    time.sleep(0.1)
    assert program.values["a"] > before["a"]  # still running
    dbg.close()


def test_agent_dormant_until_connected(target):
    agent, program = target
    # No session: checkpoint() must not install tracing.
    assert not agent._tracing
    assert agent._traced == set()


def test_breakpoint_halts_all_threads(target):
    agent, program = target
    dbg = LiveDebugger(agent.address)
    dbg.connect()
    dbg.set_breakpoint("test_live.py", _break_line())
    hit = dbg.wait_for_breakpoint(timeout=10)
    assert hit["func"] == "loop"
    assert hit["line"] == _break_line()
    # Both threads freeze (the non-trapped one parks at its next line).
    time.sleep(0.3)
    snapshot = dict(program.values)
    time.sleep(0.3)
    assert program.values == snapshot
    assert dbg.status()["halted"] is True
    dbg.clear_breakpoint("test_live.py", _break_line())
    dbg.resume()
    time.sleep(0.2)
    assert program.values != snapshot  # running again
    dbg.disconnect()
    dbg.close()


def test_backtrace_and_read_var(target):
    agent, program = target
    dbg = LiveDebugger(agent.address)
    dbg.connect()
    dbg.set_breakpoint("test_live.py", _break_line())
    hit = dbg.wait_for_breakpoint(timeout=10)
    frames = dbg.backtrace(hit["thread"])
    funcs = [f["func"] for f in frames]
    assert "loop" in funcs
    loop_frame = funcs.index("loop")
    count = dbg.read_var(hit["thread"], "count", frame=loop_frame)
    key = dbg.read_var(hit["thread"], "key", frame=loop_frame)
    assert isinstance(count, int) and count >= 1
    assert key in ("a", "b")
    # The counter is one ahead of the published value (break is pre-store).
    assert count == program.values[key] + 1
    dbg.clear_breakpoint("test_live.py", _break_line())
    dbg.resume()
    dbg.disconnect()
    dbg.close()


def test_single_step_executes_one_line(target):
    agent, program = target
    dbg = LiveDebugger(agent.address)
    dbg.connect()
    dbg.set_breakpoint("test_live.py", _break_line())
    hit = dbg.wait_for_breakpoint(timeout=10)
    dbg.clear_breakpoint("test_live.py", _break_line())
    stopped = dbg.step()
    assert stopped["event"] == "stepped"
    assert stopped["thread"] == hit["thread"]
    assert stopped["line"] != hit["line"]
    # Still halted after the step.
    assert dbg.status()["halted"] is True
    dbg.resume()
    dbg.disconnect()
    dbg.close()


def test_logical_clock_delta_grows_while_halted(target):
    agent, program = target
    dbg = LiveDebugger(agent.address)
    dbg.connect()
    status0 = dbg.status()
    assert status0["delta"] < 0.05
    dbg.halt()
    time.sleep(0.3)
    status1 = dbg.status()
    assert status1["halted"] is True
    assert status1["delta"] >= 0.25
    # Logical clock is frozen: it lags real time by the delta.
    assert status1["real_time"] - status1["logical_time"] >= 0.25
    dbg.resume()
    status2 = dbg.status()
    assert status2["halted"] is False
    assert status2["delta"] >= 0.25  # preserved after resume
    dbg.disconnect()
    dbg.close()


def test_get_debuggee_status_for_servers(target):
    """The §6.1 support procedure, live: a 'server' checks whether its
    client is being debugged and reads the client's logical time."""
    agent, program = target
    debugger_addr, logical = agent.get_debuggee_status()
    assert debugger_addr == NO_DEBUGGER
    dbg = LiveDebugger(agent.address)
    dbg.connect()
    debugger_addr, logical = agent.get_debuggee_status()
    assert debugger_addr != NO_DEBUGGER
    dbg.halt()
    time.sleep(0.2)
    _addr, frozen1 = agent.get_debuggee_status()
    time.sleep(0.2)
    _addr, frozen2 = agent.get_debuggee_status()
    assert abs(frozen2 - frozen1) < 0.05  # frozen while halted
    dbg.resume()
    dbg.disconnect()
    dbg.close()


def test_second_debugger_rejected_then_forcible(target):
    agent, program = target
    dbg1 = LiveDebugger(agent.address)
    dbg1.connect()
    dbg2 = LiveDebugger(agent.address)
    with pytest.raises(LiveDebuggerError, match="already active"):
        dbg2.connect()
    dbg2.connect(force=True)  # forcible connect (§3)
    assert agent.session_id == dbg2.session_id
    # dbg1's session is dead.
    with pytest.raises(LiveDebuggerError, match="session"):
        dbg1.processes()
    dbg2.disconnect()
    dbg1.close()
    dbg2.close()


def test_stale_session_rejected(target):
    agent, program = target
    dbg = LiveDebugger(agent.address)
    dbg.connect()
    dbg.session_id = 999_999
    with pytest.raises(LiveDebuggerError, match="session"):
        dbg.processes()
    dbg.session_id = agent.session_id
    dbg.disconnect()
    dbg.close()
