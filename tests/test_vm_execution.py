"""Integration tests: compiled CCLU programs executing on the CVM under
the Mayflower supervisor."""

from repro.cclu import compile_program
from repro.cvm import VmExecutor
from repro.mayflower import Node, ProcessState
from repro.params import Params
from repro.sim import MS, World


def run_program(source, func="main", args=None, node=None, until=None):
    """Compile, link to a fresh node, run to completion; returns
    (process, image, world)."""
    world = World(seed=0)
    node = Node(0, "n0", world, Params())
    program = compile_program(source)
    image = program.link(node)
    executor = VmExecutor(image, func, args or [])
    process = node.spawn(executor, name=func)
    world.run(until=until)
    return process, image, world


def test_arithmetic_and_print():
    process, image, _ = run_program(
        """
proc main()
  var x: int := 6 * 7
  print x
  print 10 / 3
  print -7 / 2
  print 10 % 3
end
"""
    )
    assert process.state == ProcessState.DONE
    assert image.console == ["42", "3", "-3", "1"]


def test_string_concat_and_str():
    _, image, _ = run_program(
        """
proc main()
  var name: string := "world"
  print "hello " + name + " " + str(40 + 2)
end
"""
    )
    assert image.console == ["hello world 42"]


def test_booleans_and_conditions():
    _, image, _ = run_program(
        """
proc main()
  var x: int := 5
  if x > 3 and not (x = 4) then
    print "big"
  elseif x > 1 then
    print "mid"
  else
    print "small"
  end
end
"""
    )
    assert image.console == ["big"]


def test_while_and_for_loops():
    _, image, _ = run_program(
        """
proc main()
  var total: int := 0
  for i := 1 to 10 do
    total := total + i
  end
  print total
  var n: int := 0
  while n < 3 do
    n := n + 1
  end
  print n
end
"""
    )
    assert image.console == ["55", "3"]


def test_recursion():
    _, image, _ = run_program(
        """
proc fib(n: int) returns int
  if n < 2 then
    return n
  end
  return fib(n - 1) + fib(n - 2)
end
proc main()
  print fib(12)
end
"""
    )
    assert image.console == ["144"]


def test_records_and_fields():
    _, image, _ = run_program(
        """
record point
  x: int
  y: int
end
proc main()
  var p: point := point{x: 1, y: 2}
  p.x := p.x + 10
  print p.x
  print p.y
end
"""
    )
    assert image.console == ["11", "2"]


def test_arrays():
    _, image, _ = run_program(
        """
proc main()
  var a: array[int] := [10, 20, 30]
  a[1] := 21
  print a[1]
  print len(a)
  append(a, 40)
  print len(a)
  print a
end
"""
    )
    assert image.console == ["21", "3", "4", "[10, 21, 30, 40]"]


def test_printop_used_for_display():
    _, image, _ = run_program(
        """
record point
  x: int
  y: int
end
printop point show_point
proc show_point(p: point) returns string
  return "(" + itoa(p.x) + ", " + itoa(p.y) + ")"
end
proc main()
  var p: point := point{x: 3, y: 4}
  print p
  print str(p) + "!"
end
"""
    )
    assert image.console == ["(3, 4)", "(3, 4)!"]


def test_globals():
    _, image, _ = run_program(
        """
var counter: int := 100
proc bump()
  counter := counter + 1
end
proc main()
  bump()
  bump()
  print counter
end
"""
    )
    assert image.console == ["102"]


def test_division_by_zero_fails_process():
    process, _, _ = run_program(
        """
proc main()
  var x: int := 1 / 0
end
"""
    )
    assert process.state == ProcessState.FAILED
    assert "division by zero" in str(process.failure)


def test_array_out_of_bounds_fails_process():
    process, _, _ = run_program(
        """
proc main()
  var a: array[int] := [1]
  print a[5]
end
"""
    )
    assert process.state == ProcessState.FAILED


def test_uninitialized_variable_fails_at_runtime():
    process, _, _ = run_program(
        """
proc main()
  var x: int
  print x
end
"""
    )
    assert process.state == ProcessState.FAILED


def test_semaphores_across_vm_processes():
    _, image, _ = run_program(
        """
var done: sem
proc worker(s: sem, n: int)
  sleep(1000)
  print "worker " + itoa(n)
  signal(s)
end
proc main()
  var s: sem := semaphore(0)
  spawn worker(s, 1)
  spawn worker(s, 2)
  var ok: bool := wait(s, 100000)
  var ok2: bool := wait(s, 100000)
  print ok and ok2
end
"""
    )
    assert sorted(image.console[:2]) == ["worker 1", "worker 2"]
    assert image.console[2] == "true"


def test_semaphore_wait_timeout_in_vm():
    _, image, _ = run_program(
        """
proc main()
  var s: sem := semaphore(0)
  var got: bool := wait(s, 5000)
  if not got then
    print "timed out"
  end
end
"""
    )
    assert image.console == ["timed out"]


def test_regions_in_vm():
    _, image, _ = run_program(
        """
var shared: int := 0
proc worker(r: region)
  enter(r)
  var v: int := shared
  sleep(2000)
  shared := v + 1
  leave(r)
end
proc main()
  var r: region := region()
  spawn worker(r)
  spawn worker(r)
  sleep(50000)
  print shared
end
"""
    )
    # With the region, the read-modify-write is atomic: result is 2.
    assert image.console == ["2"]


def test_unsafe_concurrency_loses_update():
    """Undisciplined shared access (paper §5.1 mentions programs with
    exactly this kind of bug) — the region-free version drops an update."""
    _, image, _ = run_program(
        """
var shared: int := 0
proc worker()
  var v: int := shared
  sleep(2000)
  shared := v + 1
end
proc main()
  spawn worker()
  spawn worker()
  sleep(50000)
  print shared
end
"""
    )
    assert image.console == ["1"]


def test_now_reads_logical_clock():
    _, image, _ = run_program(
        """
proc main()
  var t0: int := now()
  sleep(10000)
  var t1: int := now()
  print t1 - t0 >= 10000
end
"""
    )
    assert image.console == ["true"]


def test_process_result_from_main_return():
    process, _, _ = run_program(
        """
proc main() returns int
  return 99
end
"""
    )
    assert process.result == 99


def test_rcall_without_runtime_yields_failure():
    _, image, _ = run_program(
        """
proc main()
  var r: int := remote calc.add(1, 2)
  print failed(r)
end
"""
    )
    assert image.console == ["true"]


def test_backtrace_shows_call_chain():
    world = World(seed=0)
    node = Node(0, "n0", world, Params())
    program = compile_program(
        """
proc inner(n: int)
  sleep(1000000)
end
proc outer(n: int)
  inner(n + 1)
end
proc main()
  outer(5)
end
"""
    )
    image = program.link(node)
    executor = VmExecutor(image, "main", [])
    node.spawn(executor, name="main")
    world.run(until=10 * MS)  # inner is asleep now
    trace = executor.backtrace()
    names = [f["proc"] for f in trace]
    assert names == ["inner", "outer", "main"]
    assert trace[0]["locals"]["n"] == 6
    assert trace[1]["locals"]["n"] == 5


def test_spawned_process_appears_in_process_table():
    world = World(seed=0)
    node = Node(0, "n0", world, Params())
    program = compile_program(
        """
proc child()
  sleep(1000000)
end
proc main()
  spawn child()
end
"""
    )
    image = program.link(node)
    node.spawn(VmExecutor(image, "main", []), name="main")
    world.run(until=50 * MS)
    names = [p.name for p in node.supervisor.live_processes()]
    assert "child" in names


def test_monitors_in_cclu():
    """Monitors with Mesa-style condition variables (paper §2)."""
    _, image, _ = run_program(
        """
var m: monitor := 0
var items: int := 0
proc setup()
  m := monitor()
end
proc producer()
  for i := 1 to 3 do
    sleep(5000)
    enter(m)
    items := items + 1
    msignal(m, "nonempty")
    leave(m)
  end
end
proc consumer(tag: int)
  enter(m)
  while items = 0 do
    var ok: bool := mwait(m, "nonempty")
  end
  items := items - 1
  leave(m)
  print "consumed " + itoa(tag)
end
proc main()
  setup()
  spawn consumer(1)
  spawn consumer(2)
  spawn producer()
  sleep(500000)
  print items
end
"""
    )
    assert sorted(image.console[:2]) == ["consumed 1", "consumed 2"]
    assert image.console[2] == "1"  # three produced, two consumed


def test_mbroadcast_wakes_all_waiters():
    _, image, _ = run_program(
        """
var m: monitor := 0
var woken: int := 0
proc setup()
  m := monitor()
end
proc waiter()
  enter(m)
  var ok: bool := mwait(m, "go")
  woken := woken + 1
  leave(m)
end
proc main()
  setup()
  spawn waiter()
  spawn waiter()
  spawn waiter()
  sleep(20000)
  enter(m)
  mbroadcast(m, "go")
  leave(m)
  sleep(100000)
  print woken
end
"""
    )
    assert image.console == ["3"]


def test_monitor_type_error():
    process, _, _ = run_program(
        """
proc main()
  enter(42)
end
"""
    )
    assert process.state.value == "failed"
