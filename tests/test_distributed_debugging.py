"""Integration tests for the distributed features: cross-node halting,
time consistency, cross-node backtraces, and the Figure 2 race."""

from repro import MS, SEC, Cluster, Pilgrim
from repro.params import Params
from repro.sim.units import US

SERVER_SRC = """
proc double(a: int) returns int
  sleep(30000)
  return a * 2
end
"""

CLIENT_SRC = """
proc compute(n: int) returns int
  var r: int := remote worksvc.double(n)
  return r
end
proc main()
  var i: int := 0
  while i < 10000 do
    i := i + 1
    var r: int := compute(i)
    print r
  end
end
"""


def make_two_node_session(seed=0, **params):
    cluster = Cluster(
        names=["client", "server", "debugger"], seed=seed, params=Params(**params)
    )
    server_program = cluster.load_program(SERVER_SRC, "server")
    cluster.rpc("server").export_vm("worksvc", server_program, {"double": "double"})
    client_image = cluster.load_program(CLIENT_SRC, "client")
    cluster.spawn_vm("client", client_image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    return cluster, client_image, dbg


def test_breakpoint_halts_remote_node_too():
    cluster, image, dbg = make_two_node_session()
    dbg.connect("client", "server")
    dbg.set_breakpoint("client", "client", line=4)  # inside compute, after rcall
    dbg.wait_for_breakpoint()
    assert cluster.node("client").agent.halted
    # The halt broadcast reached the server's agent (one Basic Block later).
    cluster.run_for(5 * MS)
    assert cluster.node("server").agent.halted
    dbg.resume("client")
    cluster.run_for(5 * MS)
    assert not cluster.node("client").agent.halted
    assert not cluster.node("server").agent.halted


def test_logical_clocks_agree_after_breakpoints():
    """Paper §6.1: logical times at each node of a debugged program should
    be almost the same, and the debugger's breakpoint log should sum to
    almost the same interruption total."""
    cluster, image, dbg = make_two_node_session()
    dbg.connect("client", "server")
    bp = dbg.set_breakpoint("client", "client", line=3)
    for _ in range(3):
        dbg.wait_for_breakpoint()
        dbg.run_for(50 * MS)  # linger at the breakpoint
        dbg.resume("client")
    dbg.clear_breakpoint(bp)
    cluster.run_for(20 * MS)
    clock_client = cluster.node("client").clock
    clock_server = cluster.node("server").clock
    tolerance = cluster.params.clock_tolerance
    assert clock_client.delta > 100 * MS  # three ~50ms pauses accumulated
    assert abs(clock_client.delta - clock_server.delta) < 2 * tolerance
    assert abs(dbg.total_interruption() - clock_client.delta) < 3 * tolerance
    # Logical clocks of both nodes agree.
    assert abs(clock_client.logical_now() - clock_server.logical_now()) < tolerance


def test_cross_node_backtrace_follows_rpc():
    cluster, image, dbg = make_two_node_session()
    dbg.connect("client", "server")
    # Break inside the *server* procedure while a client call is live.
    dbg.set_breakpoint("server", "server", line=3)  # return a * 2
    hit = dbg.wait_for_breakpoint()
    assert hit["node"] == cluster.node("server").node_id
    # Find the client process making the call.
    procs = dbg.processes("client")
    main_pid = [p["pid"] for p in procs if p["name"] == "main"][0]
    trace = dbg.distributed_backtrace("client", main_pid)
    kinds = [(f["node"], f["proc"]) for f in trace]
    # Client frames: rpc runtime frame on top of compute/main; then the
    # server worker's frames.
    assert (0, "__rpc_runtime") in kinds
    assert (0, "compute") in kinds
    assert (0, "main") in kinds
    assert (1, "double") in kinds
    # The server-side bottom frame carries the call id linking back.
    client_info = [f for f in trace if f["node"] == 0 and f.get("info_block")][0]
    server_info = [f for f in trace if f["node"] == 1 and f.get("info_block")][-1]
    assert client_info["info_block"]["call_id"] == server_info["info_block"]["call_id"]
    dbg.resume("server")


def test_rpc_info_during_call():
    cluster, image, dbg = make_two_node_session()
    dbg.connect("client", "server")
    dbg.set_breakpoint("server", "server", line=3)
    dbg.wait_for_breakpoint()
    info = dbg.rpc_info("client")
    assert len(info["in_progress"]) == 1
    call = info["in_progress"][0]
    assert call["proc"] == "double"
    assert call["state"] in ("call_sent", "retransmitting")
    server_info = dbg.rpc_info("server")
    assert len(server_info["serving"]) == 1
    dbg.resume("server")


# ----------------------------------------------------------------------
# The Figure 2 race: semaphore timeout observed across nodes
# ----------------------------------------------------------------------

FIG2_NODE_B = """
var s: sem
var outcome: string := "pending"
proc setup()
  s := semaphore(0)
end
proc poke() returns bool
  signal(s)
  return true
end
proc q()
  var got: bool := wait(s, 10000000)
  if got then
    outcome := "signalled"
  else
    outcome := "timed_out"
  end
end
"""

FIG2_NODE_A = """
proc main()
  sleep(2000000)
  var r: bool := remote bsvc.poke()
end
"""


def run_fig2(halt_remote: bool, linger: int, seed=0):
    """Figure 2: Q on node B waits on s with a 10 s timeout; P on node A
    calls a remote procedure that signals s after 2 s.  A breakpoint on
    node A around t=1s pauses the program for ``linger``.  If node B is
    *not* halted too, Q's wait can time out because P was held up —
    Q "sees" that P has halted: an atypical computation.
    """
    cluster = Cluster(names=["a", "b", "debugger"], seed=seed)
    image_b = cluster.load_program(FIG2_NODE_B, "b")
    cluster.rpc("b").export_vm("bsvc", image_b, {"poke": "poke"})
    image_a = cluster.load_program(FIG2_NODE_A, "a")

    # Boot node B: create the semaphore, start Q.
    cluster.spawn_vm("b", image_b, "setup")
    cluster.run_for(1 * MS)
    cluster.spawn_vm("b", image_b, "q")
    cluster.spawn_vm("a", image_a, "main")

    dbg = Pilgrim(cluster, home="debugger")
    if halt_remote:
        dbg.connect("a", "b")
    else:
        dbg.connect("a")  # node B is not under the debugger's control
    cluster.run_for(1 * SEC)
    dbg.halt("a")
    dbg.run_for(linger)
    dbg.resume("a")
    cluster.run(until=cluster.world.now + 30 * SEC)
    return image_b.globals["outcome"]


def test_fig2_with_distributed_halt_q_is_signalled():
    # Pause 15 s (longer than Q's whole timeout): with node B halted too,
    # Q's timeout is frozen and the computation is unaffected.
    assert run_fig2(halt_remote=True, linger=15 * SEC) == "signalled"


def test_fig2_without_remote_halt_q_times_out():
    # Same pause but node B keeps running: Q observes P's halt.
    assert run_fig2(halt_remote=False, linger=15 * SEC) == "timed_out"


def test_fig2_short_pause_harmless_either_way():
    assert run_fig2(halt_remote=True, linger=50 * MS) == "signalled"
    assert run_fig2(halt_remote=False, linger=50 * MS) == "signalled"


# ----------------------------------------------------------------------
# Halt broadcast timing (paper §5.2 arithmetic)
# ----------------------------------------------------------------------

def test_halt_broadcast_is_serial_and_timed():
    """Peers are halted at ~k * 3.5 ms after the breakpoint (no data-link
    broadcast on the ring), so only two nodes fit inside the 8 ms minimum
    RPC latency — the paper's 'confident of contacting only two nodes'."""
    names = [f"n{i}" for i in range(5)] + ["debugger"]
    cluster = Cluster(names=names, seed=0)
    spin = "proc main()\n  while true do\n    sleep(1000)\n  end\nend"
    images = [cluster.load_program(spin, f"n{i}") for i in range(5)]
    for i in range(5):
        cluster.spawn_vm(f"n{i}", images[i], "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect(*[f"n{i}" for i in range(5)])

    halt_times = {}
    world = cluster.world

    # Send the halt request raw (not via the synchronous helper) so we can
    # observe the instant each node halts, including n0 itself.
    dbg.home.station.send(
        0,
        "agent",
        {
            "kind": "request",
            "session": dbg.session_id,
            "seq": 999_999,
            "op": "halt",
            "args": {},
            "reply_to": dbg.home.node_id,
        },
        kind="agent_request",
    )
    deadline = world.now + 60 * MS
    while len(halt_times) < 5 and world.now < deadline:
        world.run(until=world.now + 100 * US)
        for i in range(5):
            if i not in halt_times and cluster.node(f"n{i}").agent.halted:
                halt_times[i] = world.now
    assert len(halt_times) == 5
    t0 = halt_times[0]
    offsets = sorted(t - t0 for i, t in halt_times.items() if i != 0)
    bb = cluster.params.basic_block_latency
    # Serial sends: k-th peer halted no earlier than k * 3.5ms.
    for k, offset in enumerate(offsets, start=1):
        assert offset >= k * bb - 200 * US
        assert offset <= k * bb + 3 * MS
    # Only two peers were reachable inside the minimum RPC latency (8 ms).
    rpc_min = 8 * MS
    reachable = sum(1 for offset in offsets if offset <= rpc_min)
    assert reachable == 2
