"""Tests for the cluster assembly layer and the service registry."""

import pytest

from repro import MS, Cluster, Params
from repro.rpc import ServiceRegistry, Signature


def test_registry_register_lookup_unregister():
    registry = ServiceRegistry()
    registry.register("svc", 3, {"op": Signature(["int"], "int")})
    assert registry.lookup("svc") == 3
    assert registry.signature("svc", "op").arg_types == ["int"]
    assert registry.signature("svc", "other") is None
    assert registry.services() == ["svc"]
    registry.unregister("svc")
    assert registry.lookup("svc") is None


def test_cluster_node_lookup_by_name_and_index():
    cluster = Cluster(names=["alpha", "beta"])
    assert cluster.node(0).name == "alpha"
    assert cluster.node("beta").node_id == 1
    with pytest.raises(KeyError):
        cluster.node("gamma")


def test_cluster_default_names():
    cluster = Cluster(n_nodes=3)
    assert [n.name for n in cluster.nodes] == ["node0", "node1", "node2"]


def test_every_node_has_dormant_agent_and_rpc():
    cluster = Cluster(names=["a", "b"])
    for node in cluster.nodes:
        assert node.agent is not None
        assert node.rpc is not None
        assert node.station is not None
        assert not node.agent.connected()


def test_agents_optional():
    cluster = Cluster(names=["a"], agents=False)
    assert cluster.node("a").agent is None


def test_load_program_registers_with_agent_and_debugger_map():
    cluster = Cluster(names=["a", "dbg"])
    image = cluster.load_program("proc main()\nend", "a")
    assert image.module == "a"
    assert "a" in cluster.programs
    assert cluster.node("a").agent.images["a"] is image


def test_spawn_vm_runs_named_function():
    cluster = Cluster(names=["a"])
    image = cluster.load_program(
        "proc go(n: int)\n  print n * 2\nend\nproc main()\nend", "a"
    )
    cluster.spawn_vm("a", image, "go", args=[21])
    cluster.run_for(10 * MS)
    assert image.console == ["42"]


def test_shared_params_threaded_to_all_layers():
    params = Params(basic_block_latency=1000)
    cluster = Cluster(names=["a", "b"], params=params)
    assert cluster.ring.params.basic_block_latency == 1000
    assert cluster.node("a").params is params
    assert cluster.node("a").rpc.params is params


def test_cluster_clock_skews():
    cluster = Cluster(names=["a", "b"], clock_skews=[0, 1500])
    assert cluster.node("b").clock.real_now() - cluster.node("a").clock.real_now() == 1500


def test_strategies_tolerate_clock_skew():
    """A lease for an undebugged-but-connected client must not be
    perturbed by clock skew within the §6.1 tolerance."""
    from repro import Pilgrim
    from repro.servers.leases import LeaseTable
    from repro.servers.strategies import make_strategy

    params = Params()
    skew = params.clock_tolerance // 2
    cluster = Cluster(
        names=["client", "server", "debugger"],
        clock_skews=[skew, 0, 0],
    )
    image = cluster.load_program(
        "proc main()\n  while true do\n    sleep(5000)\n  end\nend", "client"
    )
    cluster.spawn_vm("client", image, "main")
    dbg = Pilgrim(cluster, home="debugger")
    dbg.connect("client")
    for strategy_name in ("fig3", "fig4"):
        strategy = make_strategy(strategy_name)
        table = LeaseTable(cluster.node("server"))
        lease = table.create(
            cluster.node("client").node_id, 100 * MS, strategy
        )
        cluster.run_for(800 * MS)
        # The skewed-but-undisturbed lease expires normally (no premature
        # drop, no infinite extension).
        assert not lease.alive, strategy_name
