"""Unit tests for the Mayflower supervisor: processes, scheduling, sync."""

from repro.mayflower import Node, ProcessState
from repro.mayflower.syscalls import (
    Cpu,
    EnterRegion,
    Exit,
    ExitRegion,
    MonitorEnter,
    MonitorExit,
    Now,
    Self,
    Signal,
    Sleep,
    Spawn,
    Wait,
    monitor_wait,
    receive,
)
from repro.obs import events as ev
from repro.params import Params
from repro.sim import MS, SEC, World


def make_node(**params):
    world = World(seed=1)
    node = Node(0, "n0", world, Params(**params))
    return world, node


def test_simple_process_runs_and_finishes():
    world, node = make_node()
    log = []

    def body():
        yield Cpu(100)
        log.append((yield Now()))
        yield Cpu(50)
        return "done"

    proc = node.spawn(body(), name="p")
    world.run()
    assert proc.state == ProcessState.DONE
    assert proc.result == "done"
    assert log and log[0] >= 100


def test_cpu_time_is_charged():
    world, node = make_node()

    def body():
        yield Cpu(1000)

    node.spawn(body())
    world.run()
    assert world.now >= 1000


def test_exit_syscall():
    world, node = make_node()

    def body():
        yield Exit(42)
        yield Cpu(1)  # never reached

    proc = node.spawn(body())
    world.run()
    assert proc.state == ProcessState.DONE
    assert proc.result == 42


def test_two_processes_time_slice():
    world, node = make_node(quantum=1 * MS)
    order = []

    def body(tag):
        for _ in range(4):
            yield Cpu(600)
            order.append(tag)

    node.spawn(body("a"))
    node.spawn(body("b"))
    world.run()
    # With a 1 ms quantum and 600 us steps both processes interleave.
    assert set(order) == {"a", "b"}
    assert order != ["a"] * 4 + ["b"] * 4


def test_priority_preference():
    world, node = make_node()
    order = []

    def body(tag):
        yield Cpu(10)
        order.append(tag)

    node.spawn(body("low"), priority=0)
    node.spawn(body("high"), priority=5)
    world.run()
    assert order == ["high", "low"]


def test_semaphore_signal_wait():
    world, node = make_node()
    sem = node.semaphore(name="s")
    log = []

    def waiter():
        got = yield Wait(sem)
        log.append(("woke", got))

    def signaller():
        yield Cpu(500)
        yield Signal(sem)

    node.spawn(waiter())
    node.spawn(signaller())
    world.run()
    assert log == [("woke", True)]


def test_semaphore_timeout():
    world, node = make_node()
    sem = node.semaphore(name="s")
    log = []

    def waiter():
        got = yield Wait(sem, timeout=10 * MS)
        log.append(got)

    node.spawn(waiter())
    world.run()
    assert log == [False]
    assert world.now >= 10 * MS


def test_semaphore_initial_count():
    world, node = make_node()
    sem = node.semaphore(count=2, name="s")
    log = []

    def waiter(tag):
        got = yield Wait(sem, timeout=5 * MS)
        log.append((tag, got))

    for tag in range(3):
        node.spawn(waiter(tag))
    world.run()
    results = dict(log)
    assert sum(1 for got in results.values() if got) == 2
    assert sum(1 for got in results.values() if not got) == 1


def test_semaphore_fifo_order():
    world, node = make_node()
    sem = node.semaphore(name="s")
    woken = []

    def waiter(tag):
        yield Wait(sem)
        woken.append(tag)

    def signaller():
        yield Sleep(1 * MS)
        for _ in range(3):
            yield Signal(sem)

    for tag in range(3):
        node.spawn(waiter(tag))
    node.spawn(signaller())
    world.run()
    assert woken == [0, 1, 2]


def test_critical_region_mutual_exclusion():
    world, node = make_node()
    region = node.region("r")
    trace = []

    def body(tag):
        yield EnterRegion(region)
        trace.append(("in", tag))
        yield Cpu(2 * MS)
        trace.append(("out", tag))
        yield ExitRegion(region)

    node.spawn(body("a"))
    node.spawn(body("b"))
    world.run()
    # No interleaving inside the region.
    assert trace in (
        [("in", "a"), ("out", "a"), ("in", "b"), ("out", "b")],
        [("in", "b"), ("out", "b"), ("in", "a"), ("out", "a")],
    )


def test_region_exit_by_non_holder_fails():
    world, node = make_node()
    region = node.region("r")

    def bad():
        yield ExitRegion(region)

    proc = node.spawn(bad())
    world.run()
    assert proc.state == ProcessState.FAILED


def test_monitor_condition_wait_signal():
    world, node = make_node()
    mon = node.monitor("m")
    log = []

    def consumer():
        yield MonitorEnter(mon)
        got = yield from monitor_wait(mon, "ready")
        log.append(("consumer", got))
        yield MonitorExit(mon)

    def producer():
        yield Sleep(1 * MS)
        yield MonitorEnter(mon)
        from repro.mayflower.syscalls import CondSignal

        yield CondSignal(mon, "ready")
        yield MonitorExit(mon)

    node.spawn(consumer())
    node.spawn(producer())
    world.run()
    assert log == [("consumer", True)]


def test_message_queue_roundtrip():
    world, node = make_node()
    queue = node.queue("q")
    log = []

    def consumer():
        msg = yield from receive(queue)
        log.append(msg)

    def producer():
        yield Sleep(2 * MS)
        queue.push({"hello": 1})

    node.spawn(consumer())
    node.spawn(producer())
    world.run()
    assert log == [{"hello": 1}]


def test_message_queue_timeout():
    world, node = make_node()
    queue = node.queue("q")
    log = []

    def consumer():
        msg = yield from receive(queue, timeout=3 * MS)
        log.append(msg)

    node.spawn(consumer())
    world.run()
    assert log == [None]


def test_sleep_advances_logical_time():
    world, node = make_node()
    times = []

    def body():
        start = yield Now()
        yield Sleep(10 * MS)
        end = yield Now()
        times.append(end - start)

    node.spawn(body())
    world.run()
    assert times[0] >= 10 * MS
    assert times[0] < 11 * MS


def test_self_and_spawn():
    world, node = make_node()
    pids = []

    def child():
        me = yield Self()
        pids.append(("child", me.pid))

    def parent():
        me = yield Self()
        pids.append(("parent", me.pid))
        kid = yield Spawn(child(), name="kid")
        pids.append(("spawned", kid.pid))

    node.spawn(parent())
    world.run()
    tags = dict(pids)
    assert tags["spawned"] == tags["child"]
    assert tags["parent"] != tags["child"]


def test_process_failure_emits_bus_event():
    world, node = make_node()
    failures = []
    world.bus.subscribe(
        ev.ProcessFailed,
        lambda e: failures.append((e.process.name, str(e.error))),
    )

    def bad():
        yield Cpu(10)
        raise ValueError("boom")

    proc = node.spawn(bad(), name="bad")
    world.run()
    assert proc.state == ProcessState.FAILED
    assert failures == [("bad", "boom")]


def test_creation_and_deletion_bus_events():
    world, node = make_node()
    seen = []
    world.bus.subscribe(ev.ProcessCreated, lambda e: seen.append(("new", e.name)))
    world.bus.subscribe(ev.ProcessDeleted, lambda e: seen.append(("del", e.name)))

    def body():
        yield Cpu(1)

    node.spawn(body(), name="x")
    world.run()
    assert ("new", "x") in seen
    assert ("del", "x") in seen


# ----------------------------------------------------------------------
# Halting (paper §5.2)
# ----------------------------------------------------------------------


def test_halt_all_freezes_ready_processes():
    world, node = make_node()
    progress = []

    def spinner():
        while True:
            yield Cpu(100)
            progress.append(world.now)

    node.spawn(spinner())
    world.run(until=5 * MS)
    count_at_halt = len(progress)
    node.supervisor.halt_all()
    world.run(until=20 * MS)
    assert len(progress) == count_at_halt
    node.supervisor.resume_all()
    world.run(until=30 * MS)
    assert len(progress) > count_at_halt


def test_halt_freezes_semaphore_timeout():
    """The heart of transparent halting: a frozen wait must not time out."""
    world, node = make_node()
    sem = node.semaphore(name="s")
    log = []

    def waiter():
        got = yield Wait(sem, timeout=10 * MS)
        log.append((got, world.now))

    node.spawn(waiter())
    world.run(until=2 * MS)
    node.supervisor.halt_all()
    # Stay halted well past the original timeout.
    world.run(until=50 * MS)
    assert log == []
    node.supervisor.resume_all()
    world.run()
    got, when = log[0]
    assert got is False
    # ~8ms of timeout remained when frozen; it resumes at 50ms.
    assert when >= 50 * MS + 7 * MS


def test_halt_exempt_process_keeps_running():
    world, node = make_node()
    progress = []

    def spinner():
        while True:
            yield Cpu(100)
            progress.append(1)

    node.spawn(spinner(), name="agentish", halt_exempt=True)
    world.run(until=2 * MS)
    node.supervisor.halt_all()
    before = len(progress)
    world.run(until=10 * MS)
    assert len(progress) > before


def test_signal_while_halted_delivers_on_resume():
    world, node = make_node()
    sem = node.semaphore(name="s")
    log = []

    def waiter():
        got = yield Wait(sem, timeout=60 * MS)
        log.append(got)

    node.spawn(waiter())
    world.run(until=1 * MS)
    node.supervisor.halt_all()
    sem.signal()  # e.g. a packet handler signalling during the halt
    world.run(until=5 * MS)
    assert log == []  # still halted
    node.supervisor.resume_all()
    world.run()
    assert log == [True]


def test_no_halt_region_defers_halt():
    world, node = make_node()
    trace = []

    def allocator_user():
        yield EnterRegion(node.heap_region)
        yield Cpu(5 * MS)
        trace.append("exiting region")
        yield ExitRegion(node.heap_region)
        trace.append("after region")
        yield Cpu(1 * MS)
        trace.append("ran more")

    node.spawn(allocator_user())
    world.run(until=1 * MS)  # process is inside the heap region
    node.supervisor.halt_all()
    world.run(until=30 * MS)
    # It finished the region, then was halted before doing more work.
    assert "exiting region" in trace
    assert "ran more" not in trace
    node.supervisor.resume_all()
    world.run()
    assert "ran more" in trace


def test_spawn_during_halt_is_born_halted():
    world, node = make_node()
    ran = []

    def child():
        yield Cpu(10)
        ran.append(1)

    node.supervisor.halt_all()
    node.spawn(child())
    world.run(until=5 * MS)
    assert ran == []
    node.supervisor.resume_all()
    world.run()
    assert ran == [1]


def test_halt_is_idempotent():
    world, node = make_node()

    def body():
        yield Cpu(100 * MS)

    node.spawn(body())
    world.run(until=1 * MS)
    assert node.supervisor.halt_all() == 1
    assert node.supervisor.halt_all() == 0
    node.supervisor.resume_all()
    world.run()


# ----------------------------------------------------------------------
# Clock (paper §5.2 delta arithmetic)
# ----------------------------------------------------------------------


def test_logical_clock_frozen_while_halted():
    world, node = make_node()
    world.schedule(100 * MS, lambda: None)  # keep time flowing
    world.run(until=10 * MS)
    assert node.clock.logical_now() == node.clock.real_now()
    node.clock.begin_halt()
    frozen = node.clock.logical_now()
    world.run(until=60 * MS)
    assert node.clock.logical_now() == frozen
    node.clock.end_halt()
    assert node.clock.delta == 50 * MS
    world.run(until=70 * MS)
    assert node.clock.logical_now() == node.clock.real_now() - 50 * MS


def test_clock_delta_accumulates_over_breakpoints():
    world, node = make_node()
    world.schedule(1 * SEC, lambda: None)
    for _ in range(3):
        node.clock.begin_halt()
        world.run_for(10 * MS)
        node.clock.end_halt()
        world.run_for(5 * MS)
    assert node.clock.delta == 30 * MS


def test_clock_reset_to_real_time():
    world, node = make_node()
    world.schedule(1 * SEC, lambda: None)
    node.clock.begin_halt()
    world.run_for(20 * MS)
    node.clock.end_halt()
    node.clock.reset_to_real_time()
    assert node.clock.logical_now() == node.clock.real_now()


def test_clock_skew():
    world = World()
    node = Node(0, "n", world, Params(), clock_skew=500)
    assert node.clock.real_now() == 500


def test_node_crash_kills_processes():
    world, node = make_node()

    def body():
        yield Cpu(100 * MS)

    proc = node.spawn(body())
    world.run(until=1 * MS)
    node.crash()
    assert not proc.is_live()
    assert node.crashed
