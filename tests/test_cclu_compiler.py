"""Unit tests for the CCLU compiler (lexer, parser, codegen diagnostics)."""

import pytest

from repro.cclu import CluCompileError, compile_program, tokenize


def test_tokenize_basics():
    tokens = tokenize('proc main() var x: int := 42 -- comment\nend')
    kinds = [(t.kind, t.value) for t in tokens[:4]]
    assert kinds == [("kw", "proc"), ("ident", "main"), ("op", "("), ("op", ")")]
    values = [t.value for t in tokens]
    assert "42" in values
    assert "comment" not in values  # comments stripped


def test_tokenize_string_escapes():
    tokens = tokenize('"a\\nb\\"c"')
    assert tokens[0].value == 'a\nb"c'


def test_tokenize_line_numbers():
    tokens = tokenize("proc\nmain\n(")
    assert [t.line for t in tokens[:3]] == [1, 2, 3]


def test_tokenize_errors():
    with pytest.raises(CluCompileError):
        tokenize('"unterminated')
    with pytest.raises(CluCompileError):
        tokenize("@")
    with pytest.raises(CluCompileError):
        tokenize("12abc")


def test_compile_smallest_program():
    program = compile_program("proc main()\nend")
    assert "main" in program.functions
    assert program.functions["main"].params == []


def test_compile_arith_and_control_flow():
    program = compile_program(
        """
proc fib(n: int) returns int
  if n < 2 then
    return n
  end
  return fib(n - 1) + fib(n - 2)
end
"""
    )
    assert "fib" in program.functions


def test_line_table_maps_source_lines():
    program = compile_program(
        """proc main()
  var x: int := 1
  x := x + 1
end"""
    )
    func = program.functions["main"]
    assert func.first_pc_for_line(2) is not None
    assert func.first_pc_for_line(3) is not None
    pcs2 = func.pcs_for_line(2)
    pcs3 = func.pcs_for_line(3)
    assert max(pcs2) < min(pcs3)


def test_unknown_variable_rejected():
    with pytest.raises(CluCompileError, match="undeclared"):
        compile_program("proc main()\n  print y\nend")


def test_assignment_to_undeclared_rejected():
    with pytest.raises(CluCompileError, match="undeclared"):
        compile_program("proc main()\n  y := 1\nend")


def test_duplicate_variable_rejected():
    with pytest.raises(CluCompileError, match="twice"):
        compile_program("proc main()\n  var x: int\n  var x: int\nend")


def test_unknown_procedure_rejected():
    with pytest.raises(CluCompileError, match="unknown procedure"):
        compile_program("proc main()\n  var x: int := nothere(1)\nend")


def test_wrong_arity_rejected():
    with pytest.raises(CluCompileError, match="expects 2 args"):
        compile_program(
            "proc two(a: int, b: int)\nend\nproc main()\n  two(1)\nend"
        )


def test_record_declaration_and_literal():
    program = compile_program(
        """
record point
  x: int
  y: int
end
proc main()
  var p: point := point{x: 1, y: 2}
end
"""
    )
    assert program.records == {"point": ["x", "y"]}


def test_record_literal_missing_field_rejected():
    with pytest.raises(CluCompileError, match="must set exactly"):
        compile_program(
            """
record point
  x: int
  y: int
end
proc main()
  var p: point := point{x: 1}
end
"""
        )


def test_unknown_type_rejected():
    with pytest.raises(CluCompileError, match="unknown type"):
        compile_program("proc main()\n  var x: wibble\nend")


def test_printop_registration():
    program = compile_program(
        """
record point
  x: int
  y: int
end
printop point show
proc show(p: point) returns string
  return itoa(p.x)
end
"""
    )
    assert program.printops == {"point": "show"}


def test_printop_arity_enforced():
    with pytest.raises(CluCompileError, match="exactly one argument"):
        compile_program(
            """
record point
  x: int
end
printop point show
proc show(p: point, q: int) returns string
  return "x"
end
"""
        )


def test_printop_unknown_proc_rejected():
    with pytest.raises(CluCompileError, match="unknown procedure"):
        compile_program("record r\n x: int\nend\nprintop r nope")


def test_globals_literal_initializers():
    program = compile_program('var greeting: string := "hi"\nproc main()\nend')
    assert program.globals_init == {"greeting": "hi"}


def test_globals_non_literal_initializer_rejected():
    with pytest.raises(CluCompileError, match="literals"):
        compile_program("var x: int := 1 + 2\nproc main()\nend")


def test_signal_as_expression_rejected():
    with pytest.raises(CluCompileError, match="statement"):
        compile_program(
            "proc main()\n  var s: sem := semaphore(0)\n  var x: int := signal(s)\nend"
        )


def test_remote_call_syntax():
    program = compile_program(
        """
proc main()
  var a: int := remote calc.add(1, 2)
  var b: int := remote maybe calc.add(3, 4)
end
"""
    )
    code = program.functions["main"].code
    rcalls = [i for i in code if i.op == "RCALL"]
    assert rcalls[0].arg == ("calc", "add", "once")
    assert rcalls[1].arg == ("calc", "add", "maybe")


def test_duplicate_procedure_rejected():
    with pytest.raises(CluCompileError, match="twice"):
        compile_program("proc a()\nend\nproc a()\nend")


def test_parse_error_reports_line():
    with pytest.raises(CluCompileError, match="line 3"):
        compile_program("proc main()\n  var x: int := 1\n  var y int\nend")
