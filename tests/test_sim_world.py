"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import MS, SimulationError, World
from repro.sim.units import FOREVER, format_time


def test_clock_starts_at_zero():
    world = World()
    assert world.now == 0


def test_schedule_and_run_order():
    world = World()
    fired = []
    world.schedule(30, lambda: fired.append("c"))
    world.schedule(10, lambda: fired.append("a"))
    world.schedule(20, lambda: fired.append("b"))
    world.run()
    assert fired == ["a", "b", "c"]
    assert world.now == 30


def test_simultaneous_events_fifo():
    world = World()
    fired = []
    for tag in range(5):
        world.schedule(100, fired.append, tag)
    world.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_in_past_rejected():
    world = World()
    world.schedule(10, lambda: None)
    world.run()
    with pytest.raises(SimulationError):
        world.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        world.schedule(-1, lambda: None)


def test_cancel_event():
    world = World()
    fired = []
    handle = world.schedule(10, lambda: fired.append("x"))
    handle.cancel()
    world.run()
    assert fired == []
    assert world.now == 0  # cancelled events do not advance time


def test_run_until():
    world = World()
    fired = []
    world.schedule(10, fired.append, 1)
    world.schedule(50, fired.append, 2)
    world.run(until=20)
    assert fired == [1]
    assert world.now == 20
    world.run()
    assert fired == [1, 2]


def test_run_for():
    world = World()
    fired = []
    world.schedule(10, fired.append, 1)
    world.run_for(5)
    assert fired == []
    assert world.now == 5
    world.run_for(10)
    assert fired == [1]


def test_max_events():
    world = World()
    fired = []
    for i in range(10):
        world.schedule(i + 1, fired.append, i)
    world.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_from_handler():
    world = World()
    fired = []

    def first():
        fired.append("first")
        world.schedule(5, lambda: fired.append("second"))

    world.schedule(10, first)
    world.run()
    assert fired == ["first", "second"]
    assert world.now == 15


def test_peek_next_time():
    world = World()
    assert world.peek_next_time() == FOREVER
    handle = world.schedule(42, lambda: None)
    assert world.peek_next_time() == 42
    handle.cancel()
    assert world.peek_next_time() == FOREVER


def test_advance_within_boundary():
    world = World()
    world.schedule(100, lambda: None)

    def handler():
        world.advance(40)
        assert world.now == 40
        with pytest.raises(SimulationError):
            world.advance(1000)

    world.schedule(0, handler)
    world.run(max_events=1)
    assert world.now == 40


def test_advance_exactly_to_boundary_allowed():
    world = World()
    world.schedule(100, lambda: None)

    def handler():
        world.advance(100)

    world.schedule(0, handler)
    world.run(max_events=1)
    assert world.now == 100


def test_stop_from_handler():
    world = World()
    fired = []
    world.schedule(1, lambda: (fired.append(1), world.stop()))
    world.schedule(2, fired.append, 2)
    world.run()
    assert fired == [1]


def test_rng_deterministic():
    a = World(seed=7)
    b = World(seed=7)
    assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]


def test_run_not_reentrant():
    world = World()

    def handler():
        with pytest.raises(SimulationError):
            world.run()

    world.schedule(1, handler)
    world.run()


def test_handle_remaining():
    world = World()
    handle = world.schedule(100, lambda: None)
    assert handle.remaining(world.now) == 100
    assert handle.remaining(150) == 0


def test_format_time():
    assert format_time(400) == "400us"
    assert format_time(8 * MS) == "8.000ms"
    assert format_time(2_500_000) == "2.500s"
