"""Property-based tests (hypothesis) for core data structures and
invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cvm.values import CluArray, CluRecord
from repro.debugger.timelog import BreakpointLog
from repro.mayflower.clock import NodeClock
from repro.rpc.debug import RecentCallBuffer
from repro.rpc.marshal import marshal, unmarshal, wire_size
from repro.rpc.timers import TimerSet
from repro.sim import World

# ----------------------------------------------------------------------
# Event kernel
# ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
def test_world_fires_events_in_time_then_fifo_order(delays):
    world = World()
    fired = []
    for index, delay in enumerate(delays):
        world.schedule(delay, fired.append, (delay, index))
    world.run()
    # Sorted by (time, insertion order) — the determinism contract.
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40),
    st.data(),
)
def test_world_cancellation_drops_exactly_the_cancelled(delays, data):
    world = World()
    handles = []
    fired = []
    for index, delay in enumerate(delays):
        handles.append(world.schedule(delay, fired.append, index))
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
    )
    for index in to_cancel:
        handles[index].cancel()
    world.run()
    assert sorted(fired) == sorted(set(range(len(delays))) - to_cancel)


@given(st.lists(st.integers(min_value=1, max_value=1000), max_size=30))
def test_world_clock_is_monotonic(delays):
    world = World()
    observed = []

    def note():
        observed.append(world.now)

    cursor = 0
    for delay in delays:
        cursor += delay
        world.schedule_at(cursor, note)
    world.run()
    assert observed == sorted(observed)


# ----------------------------------------------------------------------
# Clock delta arithmetic (paper §5.2)
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10_000),  # run duration
            st.integers(min_value=1, max_value=10_000),  # halt duration
        ),
        max_size=20,
    )
)
def test_clock_delta_equals_total_halt_time(segments):
    time = {"now": 0}
    clock = NodeClock(lambda: time["now"])
    total_halted = 0
    for run, halt in segments:
        time["now"] += run
        clock.begin_halt()
        time["now"] += halt
        total_halted += halt
        clock.end_halt()
    assert clock.delta == total_halted
    assert clock.logical_now() == clock.real_now() - total_halted


@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=0, max_value=100_000),
)
def test_clock_frozen_during_halt(run_before, halt_len):
    time = {"now": 0}
    clock = NodeClock(lambda: time["now"])
    time["now"] = run_before
    clock.begin_halt()
    frozen = clock.logical_now()
    time["now"] += halt_len
    assert clock.logical_now() == frozen
    clock.end_halt()
    assert clock.logical_now() == frozen


# ----------------------------------------------------------------------
# Breakpoint log / convert_debuggee_time (paper §6.1)
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5_000),
            st.integers(min_value=1, max_value=5_000),
        ),
        max_size=15,
    ),
    st.integers(min_value=0, max_value=200_000),
)
def test_breakpoint_log_convert_matches_delta_simulation(segments, probe_offset):
    """The log's convert() must agree with a replayed NodeClock."""
    time = {"now": 0}
    clock = NodeClock(lambda: time["now"])
    log = BreakpointLog()
    marks = []
    for run, halt in segments:
        time["now"] += run
        marks.append(time["now"])
        log.begin(time["now"])
        clock.begin_halt()
        time["now"] += halt
        log.end(time["now"])
        clock.end_halt()
    now = time["now"] + probe_offset
    time["now"] = now
    # Converting 'now' gives the node's current logical time.
    assert log.convert(now, now) == clock.logical_now()
    # Conversion is monotone over probe dates.
    converted = [log.convert(m, now) for m in marks]
    assert converted == sorted(converted)
    # Dates before any halt convert to themselves.
    assert log.convert(0, now) == 0


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=20))
def test_breakpoint_log_total_never_negative(starts):
    log = BreakpointLog()
    cursor = 0
    for gap in starts:
        cursor += gap
        log.begin(cursor)
        cursor += gap // 2
        log.end(cursor)
    assert log.total_interruption(cursor) >= 0
    assert log.total_interruption(cursor) <= cursor


# ----------------------------------------------------------------------
# Recent-call cyclic buffer (paper §4.3)
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=20),
    st.lists(st.tuples(st.integers(), st.booleans()), max_size=100),
)
def test_recent_buffer_keeps_last_n(slots, events):
    buffer = RecentCallBuffer(slots)
    for call_id, ok in events:
        buffer.record(call_id, ok)
    assert buffer.entries() == events[-slots:]
    assert len(buffer) <= slots


@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=60))
def test_recent_buffer_lookup_returns_most_recent(events):
    buffer = RecentCallBuffer(10)
    for call_id, ok in events:
        buffer.record(call_id, ok)
    window = events[-10:]
    for call_id, _ok in window:
        latest = [ok for cid, ok in window if cid == call_id][-1]
        assert buffer.lookup(call_id) == latest


# ----------------------------------------------------------------------
# Marshalling round trips (paper §2 type-checked RPC)
# ----------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=20),
)


def clu_values(depth=2):
    if depth == 0:
        return scalars
    inner = clu_values(depth - 1)
    return st.one_of(
        scalars,
        st.builds(lambda items: CluArray(items), st.lists(inner, max_size=4)),
        st.builds(
            lambda fields: CluRecord("rec", dict(fields)),
            st.lists(
                st.tuples(st.text(min_size=1, max_size=5), inner),
                min_size=1,
                max_size=4,
            ),
        ),
    )


@given(clu_values())
@settings(max_examples=200)
def test_marshal_roundtrip_preserves_value(value):
    wire = marshal(value)
    rebuilt = unmarshal(wire)
    assert rebuilt == value
    assert wire_size(wire) >= 0


@given(clu_values(depth=1))
def test_marshal_produces_fresh_objects(value):
    if isinstance(value, (CluArray, CluRecord)):
        rebuilt = unmarshal(marshal(value))
        assert rebuilt is not value


# ----------------------------------------------------------------------
# Freezable timers
# ----------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=1, max_value=1_000), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=2_000),
)
def test_timerset_freeze_shifts_all_fires_by_frozen_time(delays, frozen_for):
    world = World()
    timers = TimerSet(world)
    fired = {}
    for index, delay in enumerate(delays):
        timers.start(delay, fired.__setitem__, index, None)

    freeze_at = 0  # freeze immediately
    timers.freeze()
    world.run_for(frozen_for)
    timers.thaw()

    def record_time(index, _):
        fired[index] = world.now

    # (re-wire callbacks is not possible; instead check firing times)
    world.run()
    # All timers fired, each at original delay + frozen_for.
    assert set(fired) == set(range(len(delays)))


@given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=10))
def test_timerset_cancel_prevents_fire(delays):
    world = World()
    timers = TimerSet(world)
    fired = []
    handles = [timers.start(d, fired.append, i) for i, d in enumerate(delays)]
    handles[0].cancel()
    world.run()
    assert 0 not in fired
    assert sorted(fired) == list(range(1, len(delays)))
