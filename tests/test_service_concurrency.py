"""Concurrent attach/detach: races, forcible takeover, socket hygiene."""

import os
import socket
import threading
import time

import pytest

from repro.debugger.errors import (
    DebuggerError,
    RequestTimeoutError,
    ServiceError,
    SessionHeldError,
    SessionTakenError,
)
from repro.service import ServiceClient, serve
from repro.service.daemon import _clear_stale_socket
from repro.sim.units import SEC


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon on a private socket; yields the socket path."""
    path = str(tmp_path / "svc.sock")
    ready = threading.Event()
    thread = threading.Thread(target=serve, args=(path, ready), daemon=True)
    thread.start()
    assert ready.wait(5)
    yield path
    try:
        ServiceClient(path, connect_retries=1).shutdown()
    except DebuggerError:
        pass
    thread.join(5)


# ----------------------------------------------------------------------
# Racing connects: exactly one winner
# ----------------------------------------------------------------------


def test_racing_connects_have_exactly_one_winner(daemon):
    opener = ServiceClient(daemon, client="opener")
    opener.open("w1", "world", scenario="counter", seed=3)
    opener.close()

    barrier = threading.Barrier(2)
    outcomes: dict = {}

    def race(label):
        client = ServiceClient(daemon, client=label)
        session = client.session("w1")
        barrier.wait()
        try:
            session.connect("app")
            outcomes[label] = "won"
        except SessionHeldError:
            outcomes[label] = "refused"
        finally:
            client.close()

    threads = [threading.Thread(target=race, args=(f"racer-{i}",))
               for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert sorted(outcomes.values()) == ["refused", "won"]


def test_second_connect_refused_without_force(daemon):
    alice = ServiceClient(daemon, client="alice")
    bob = ServiceClient(daemon, client="bob")
    alice.open("w1", "world", scenario="counter", seed=3)
    alice.session("w1").connect("app")
    with pytest.raises(SessionHeldError) as excinfo:
        bob.session("w1").connect("app")
    assert excinfo.value.code == "session_held"
    # force=True takes over; the holder's next request reports eviction.
    bob.session("w1").connect("app", force=True)
    with pytest.raises(SessionTakenError) as excinfo:
        alice.session("w1").status()
    assert excinfo.value.code == "takeover"
    alice.close()
    bob.close()


def test_takeover_evicts_holder_mid_wait(daemon):
    """A forcible connect lands while the holder's wait is in flight.

    The holder's in-flight ``wait_for_event`` must come back as the
    typed ``takeover`` error — never as its own (now-meaningless)
    result or timeout.
    """
    alice = ServiceClient(daemon, client="alice", timeout=120)
    alice.open("w1", "world", scenario="counter", seed=3)
    held = alice.session("w1")
    held.connect("app")

    started = threading.Event()
    outcome: dict = {}

    def long_wait():
        started.set()
        try:
            # No breakpoints are set, so this drives the simulated world
            # for a long stretch of virtual time.
            outcome["result"] = held.wait_for_event(timeout=600 * SEC)
        except DebuggerError as exc:
            outcome["error"] = exc

    waiter = threading.Thread(target=long_wait, daemon=True)
    waiter.start()
    started.wait(5)
    time.sleep(0.2)  # let the wait reach the daemon and start running

    bob = ServiceClient(daemon, client="bob", timeout=120)
    bob.session("w1").connect("app", force=True)

    waiter.join(120)
    assert not waiter.is_alive()
    assert isinstance(outcome.get("error"), SessionTakenError)
    # The new holder has a working session.
    assert bob.session("w1").status().mode == "sim"
    alice.close()
    bob.close()


def test_disconnect_parks_session_for_next_client(daemon):
    alice = ServiceClient(daemon, client="alice")
    alice.open("w1", "world", scenario="counter", seed=3)
    session = alice.session("w1")
    session.connect("app")
    session.disconnect()
    alice.close()
    # Parked: a different client adopts it without force.
    bob = ServiceClient(daemon, client="bob")
    assert bob.session("w1").status().mode == "sim"
    bob.close()


# ----------------------------------------------------------------------
# Socket hygiene
# ----------------------------------------------------------------------


def test_stale_socket_file_is_cleaned_up(tmp_path):
    path = str(tmp_path / "stale.sock")
    # A killed daemon leaves its socket file behind with no listener.
    leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    leftover.bind(path)
    leftover.close()
    assert os.path.exists(path)

    ready = threading.Event()
    thread = threading.Thread(target=serve, args=(path, ready), daemon=True)
    thread.start()
    assert ready.wait(5)  # bound despite the stale file
    client = ServiceClient(path)
    assert client.ping()["protocol"] >= 1
    client.shutdown()
    client.close()
    thread.join(5)
    assert not os.path.exists(path)


def test_live_daemon_socket_is_not_clobbered(daemon):
    with pytest.raises(ServiceError, match="already listening"):
        _clear_stale_socket(daemon)
    # And the daemon is still healthy afterwards.
    with ServiceClient(daemon) as client:
        assert client.ping()["sessions"] == 0


# ----------------------------------------------------------------------
# Client timeout and retry
# ----------------------------------------------------------------------


def test_client_times_out_against_hung_daemon(tmp_path):
    path = str(tmp_path / "hung.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(1)
    accepted = []

    def accept_and_ignore():
        conn, _ = listener.accept()
        accepted.append(conn)  # keep it open, never reply

    acceptor = threading.Thread(target=accept_and_ignore, daemon=True)
    acceptor.start()
    client = ServiceClient(path, timeout=0.3)
    with pytest.raises(RequestTimeoutError) as excinfo:
        client.ping()
    assert excinfo.value.code == "timeout"
    client.close()
    for conn in accepted:
        conn.close()
    listener.close()


def test_client_retries_until_daemon_boots(tmp_path):
    path = str(tmp_path / "late.sock")
    ready = threading.Event()

    def boot_late():
        time.sleep(0.3)
        serve(path, ready)

    thread = threading.Thread(target=boot_late, daemon=True)
    thread.start()
    # The client dials before the socket exists; backoff bridges the gap.
    client = ServiceClient(path, connect_retries=50, retry_delay=0.05)
    assert client.ping()["protocol"] >= 1
    client.shutdown()
    client.close()
    thread.join(5)


def test_client_fails_cleanly_with_no_daemon(tmp_path):
    with pytest.raises(ServiceError, match="cannot reach"):
        ServiceClient(str(tmp_path / "void.sock"), connect_retries=2,
                      retry_delay=0.01)
