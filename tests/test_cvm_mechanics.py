"""Direct tests of the CVM's debugging mechanics: trap patching, image
isolation, frame well-formedness, print-op sub-interpretation."""

import pytest

from repro.cclu import compile_program
from repro.cvm import (
    CluRecord,
    CluRuntimeError,
    Instr,
    VmExecutor,
    run_pure,
)
from repro.cvm import instructions as ops
from repro.cvm.interp import BreakpointWait
from repro.mayflower import Node, ProcessState
from repro.params import Params
from repro.sim import MS, World

SOURCE = """
proc helper(x: int) returns int
  var y: int := x * 2
  return y + 1
end
proc main()
  var a: int := helper(10)
  var b: int := helper(a)
  print b
end
"""


def make_node():
    world = World()
    node = Node(0, "n", world, Params())
    return world, node


def test_trap_patching_stops_process():
    world, node = make_node()
    image = compile_program(SOURCE).link(node)
    func = image.function("helper")
    original = func.code[0]
    func.code[0] = Instr(ops.TRAP, line=original.line)
    trapped = []
    image.trap_handler = lambda proc, executor, frame: trapped.append(
        (proc.pid, frame.pc)
    )
    process = node.spawn(VmExecutor(image, "main", []), name="main")
    world.run(until=50 * MS)
    assert trapped == [(process.pid, 0)]
    assert process.state == ProcessState.WAITING
    assert isinstance(process.waiting_on, BreakpointWait)
    assert image.console == []  # never got to print


def test_trap_restore_and_resume():
    world, node = make_node()
    image = compile_program(SOURCE).link(node)
    func = image.function("helper")
    original = func.code[0]
    func.code[0] = Instr(ops.TRAP, line=original.line)
    stopped = {}
    image.trap_handler = lambda proc, ex, frame: stopped.update(proc=proc)
    process = node.spawn(VmExecutor(image, "main", []), name="main")
    world.run(until=50 * MS)
    # Restore the original instruction and wake the process: it re-fetches
    # the same pc and proceeds (the 68000 trap model).
    func.code[0] = original
    node.supervisor.unblock(stopped["proc"], None)
    world.run()
    assert image.console == ["43"]


def test_after_step_hook_fires_once():
    world, node = make_node()
    image = compile_program(SOURCE).link(node)
    executor = VmExecutor(image, "main", [])
    fired = []
    executor.after_step = lambda: fired.append(world.now)
    node.spawn(executor, name="main")
    world.run()
    assert len(fired) == 1


def test_images_are_isolated_per_node():
    world = World()
    node_a = Node(0, "a", world, Params())
    node_b = Node(1, "b", world, Params())
    program = compile_program(SOURCE)
    image_a = program.link(node_a)
    image_b = program.link(node_b)
    # Patch a trap on node A only.
    image_a.function("main").code[0] = Instr(ops.TRAP)
    assert image_b.function("main").code[0].op != ops.TRAP
    # And the master program is untouched.
    assert program.functions["main"].code[0].op != ops.TRAP
    # Globals are also per-node.
    image_a.globals["x"] = 1
    assert "x" not in image_b.globals


def test_under_construction_frames_hidden_from_backtrace():
    world, node = make_node()
    image = compile_program(SOURCE).link(node)
    executor = VmExecutor(image, "main", [])
    node.spawn(executor, name="main")
    # Drive instruction by instruction; at every point the backtrace must
    # contain only well-formed frames.
    for _ in range(200):
        if not world.step():
            break
        for frame in executor.backtrace():
            assert frame["well_formed"]


def test_backtrace_locals_reflect_execution_point():
    world, node = make_node()
    source = """
proc main()
  var a: int := 1
  var s: sem := semaphore(0)
  var got: bool := wait(s, 1000000)
end
"""
    image = compile_program(source).link(node)
    executor = VmExecutor(image, "main", [])
    node.spawn(executor, name="main")
    world.run(until=10 * MS)  # blocked on the wait
    trace = executor.backtrace()
    assert trace[0]["locals"]["a"] == 1
    assert "s" in trace[0]["locals"]
    assert "got" not in trace[0]["locals"]  # not assigned yet


def test_run_pure_rejects_blocking_ops():
    world, node = make_node()
    source = """
proc bad(x: int) returns string
  sleep(100)
  return "no"
end
"""
    image = compile_program(source).link(node)
    with pytest.raises(CluRuntimeError, match="not allowed"):
        run_pure(image, "bad", [1])


def test_run_pure_bounded():
    world, node = make_node()
    source = """
proc spin(x: int) returns string
  while true do
    x := x + 1
  end
  return "never"
end
"""
    image = compile_program(source).link(node)
    with pytest.raises(CluRuntimeError, match="too long"):
        run_pure(image, "spin", [1], max_instructions=1000)


def test_run_pure_evaluates_printop_with_helpers():
    world, node = make_node()
    source = """
record money
  pounds: int
  pence: int
end
printop money show_money
proc pad(p: int) returns string
  if p < 10 then
    return "0" + itoa(p)
  end
  return itoa(p)
end
proc show_money(m: money) returns string
  return itoa(m.pounds) + "." + pad(m.pence)
end
proc main()
end
"""
    image = compile_program(source).link(node)
    value = CluRecord("money", {"pounds": 12, "pence": 5})
    assert image.render(value) == "12.05"


def test_printop_failure_falls_back_gracefully():
    """A buggy print operation must not take the agent down."""
    world, node = make_node()
    source = """
record thing
  n: int
end
printop thing show
proc show(t: thing) returns string
  return itoa(1 / 0)
end
proc main()
end
"""
    image = compile_program(source).link(node)
    value = CluRecord("thing", {"n": 1})
    with pytest.raises(CluRuntimeError):
        image.render(value)


def test_line_table_round_trip():
    program = compile_program(SOURCE)
    func = program.functions["helper"]
    for pc, instr in enumerate(func.code):
        assert func.line_for_pc(pc) == instr.line
        assert pc in func.pcs_for_line(instr.line)
    assert func.line_for_pc(10_000) == 0


def test_registers_report_position():
    world, node = make_node()
    source = "proc main()\n  sleep(1000000)\nend"
    image = compile_program(source).link(node)
    executor = VmExecutor(image, "main", [])
    process = node.spawn(executor, name="main")
    world.run(until=10 * MS)
    regs = process.registers()
    assert regs["kind"] == "vm"
    assert regs["proc"] == "main"
    assert regs["state"] == "waiting"
    assert "sleep" in regs["waiting_on"]


def test_vm_executor_rejects_bad_arity():
    world, node = make_node()
    image = compile_program(SOURCE).link(node)
    with pytest.raises(CluRuntimeError, match="expects 1 args"):
        VmExecutor(image, "helper", [])


def test_output_redirection():
    world, node = make_node()
    image = compile_program('proc main()\n  print "hello"\nend').link(node)
    collected = []
    executor = VmExecutor(image, "main", [], output=collected.append)
    node.spawn(executor, name="main")
    world.run()
    assert collected == ["hello"]
    assert image.console == []  # redirected away from the console
