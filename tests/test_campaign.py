"""Campaign runner, shrinker, report determinism, and CLI smoke tests."""

import json

import pytest

from repro.campaign import (
    CampaignReport,
    CellSpec,
    build_grid,
    get_plan,
    get_scenario,
    run_campaign,
    run_cell,
    shard_cells,
    shrink_cell,
)
from repro.campaign.cli import main as campaign_main
from repro.campaign.scenarios import ECHO_FULL_MASK
from repro.faults.plan import FaultPlan
from repro.obs.metrics import merge_snapshots
from repro.replay import ReplayWorld, Trace
from repro.sim.units import MS, SEC
from repro.sim.world import SimulationError, World


# ----------------------------------------------------------------------
# FaultPlan split / merge / narrow (the shrinker's step primitives)
# ----------------------------------------------------------------------

def test_split_merge_round_trip():
    plan = (FaultPlan()
            .delay(at=50 * MS, duration=800 * MS, extra=4 * MS)
            .partition(at=80 * MS, groups=((0,), (1,)), duration=100 * MS)
            .crash(at=450 * MS, node="server"))
    units = plan.split()
    assert [len(unit) for unit in units] == [1, 1, 1]
    rebuilt = FaultPlan.merge(units)
    assert rebuilt.to_dict() == plan.to_dict()


def test_split_merge_empty_plan():
    assert FaultPlan().split() == []
    assert FaultPlan.merge([]).to_dict() == FaultPlan().to_dict()


def test_merge_sorts_by_time_stably():
    # Two windows overlapping at the same start time: merge must order by
    # `at` but keep the original relative order for ties (stable sort).
    early = FaultPlan().loss(at=10 * MS, duration=20 * MS)
    tie_a = FaultPlan().delay(at=5 * MS, duration=50 * MS, extra=1 * MS)
    tie_b = FaultPlan().duplicate(at=5 * MS, duration=50 * MS)
    merged = FaultPlan.merge([early, tie_a, tie_b])
    kinds = [action.kind for action in merged.actions]
    assert kinds == ["delay", "duplicate", "loss"]


def test_without_and_narrowed():
    plan = (FaultPlan()
            .delay(at=50 * MS, duration=800 * MS, extra=4 * MS)
            .crash(at=450 * MS, node="server"))
    only_crash = plan.without([0])
    assert [a.kind for a in only_crash.actions] == ["crash"]
    narrowed = plan.narrowed(0)
    assert narrowed.actions[0].duration == 400 * MS
    assert plan.actions[0].duration == 800 * MS  # original untouched
    with pytest.raises(ValueError):
        plan.narrowed(1)  # crash is a point action, not a window
    assert plan.window_count() == 2  # one window + the crash


# ----------------------------------------------------------------------
# Metrics merge
# ----------------------------------------------------------------------

def test_merge_snapshots_counters_and_histograms():
    a = {"rpc.calls_started": 3,
         "rpc.latency_us": {"count": 2, "mean": 100.0, "min": 50, "max": 150}}
    b = {"rpc.calls_started": 4,
         "rpc.latency_us": {"count": 1, "mean": 400.0, "min": 400, "max": 400}}
    merged = merge_snapshots([a, b])
    assert merged["rpc.calls_started"] == 7
    hist = merged["rpc.latency_us"]
    assert hist["count"] == 3
    assert hist["min"] == 50 and hist["max"] == 400
    assert hist["mean"] == pytest.approx(200.0)  # exact, not mean-of-means
    # Order independence.
    assert merge_snapshots([b, a]) == merged


# ----------------------------------------------------------------------
# World / Cluster teardown
# ----------------------------------------------------------------------

def test_world_close_cancels_pending():
    world = World(seed=0)
    world.schedule(1 * SEC, lambda: None)
    assert world.pending_count() > 0
    world.close()
    assert world.pending_count() == 0
    with pytest.raises(SimulationError):
        world.run(until=2 * SEC)


def test_world_close_rejects_running_world():
    world = World(seed=0)

    def closer():
        with pytest.raises(SimulationError):
            world.close()

    world.schedule(1 * MS, closer)
    world.run(until=2 * MS)


# ----------------------------------------------------------------------
# Grid construction and sharding
# ----------------------------------------------------------------------

def test_build_grid_ordering_and_unknown_scenario():
    plans = [("calm", get_plan("calm")), ("crash", get_plan("crash"))]
    cells = build_grid(["echo"], [0, 1], plans)
    assert [cell.index for cell in cells] == [0, 1, 2, 3]
    assert [cell.label() for cell in cells] == [
        "echo/s0/calm", "echo/s0/crash", "echo/s1/calm", "echo/s1/crash",
    ]
    with pytest.raises(KeyError):
        build_grid(["nope"], [0], plans)


def test_shard_assignment_is_deterministic():
    plans = [("calm", get_plan("calm"))]
    cells = build_grid(["echo"], list(range(6)), plans)
    shards = shard_cells(cells, 4)
    assert [[cell.index for cell in shard] for shard in shards] == [
        [0, 4], [1, 5], [2], [3],
    ]
    with pytest.raises(ValueError):
        shard_cells(cells, 0)


# ----------------------------------------------------------------------
# Campaign execution: verdicts and worker-count independence
# ----------------------------------------------------------------------

GRID_ARGS = (["echo"], [0, 1],
             [("calm", get_plan("calm")), ("crash", get_plan("crash"))])


def test_run_cell_verdicts():
    cells = build_grid(*GRID_ARGS)
    calm = run_cell(cells[0])
    assert calm["verdict"] == "pass" and calm["violations"] == []
    crash = run_cell(cells[1])
    assert crash["verdict"] == "fail"
    assert any("lost calls" in v for v in crash["violations"])
    # The success bitmask pins exactly which calls died with the server.
    assert f"{ECHO_FULL_MASK:#x}" in crash["violations"][0]


def test_report_byte_identical_across_worker_counts():
    cells = build_grid(*GRID_ARGS)
    inline = run_campaign(cells, workers=1, shrink=False)
    pooled = run_campaign(cells, workers=2, shrink=False)
    wide = run_campaign(cells, workers=4, shrink=False)
    assert inline.canonical_json() == pooled.canonical_json()
    assert inline.canonical_json() == wide.canonical_json()
    assert inline.workers == 1 and pooled.workers == 2  # run facts differ
    assert len(inline.failed) == 2 and len(inline.passed) == 2


def test_report_save_and_summary(tmp_path):
    cells = build_grid(*GRID_ARGS)
    report = run_campaign(cells, workers=1, shrink=False)
    path = tmp_path / "report.json"
    report.save(path)
    data = json.loads(path.read_text())
    assert data["totals"] == {"cells": 4, "passed": 2, "failed": 2,
                              "errored": 0,
                              "events": sum(c["events"] for c in report.cells)}
    assert data["metrics"]["rpc.calls_started"] == 48  # 12 calls x 4 cells
    text = report.summary()
    assert "echo/s0/crash" in text and "fail" in text
    assert "fleet metrics" in text


# ----------------------------------------------------------------------
# The shrinker
# ----------------------------------------------------------------------

def test_shrinker_converges_on_storm(tmp_path):
    storm = build_grid(["echo"], [0], [("storm", get_plan("storm"))])[0]
    assert len(storm.plan) == 5
    result = shrink_cell(storm, out_dir=str(tmp_path))
    # The storm's noise windows are stripped; only the fatal crash stays.
    assert len(result.minimal_plan) == 1
    assert result.minimal_plan.actions[0].kind == "crash"
    assert result.minimal_plan.window_count() <= 2
    # The horizon tightens to just past the last relevant event.
    assert result.horizon < get_scenario("echo").run_until
    assert result.reductions >= 3
    assert result.trials >= result.reductions
    # The golden trace replays byte-identically and re-fails identically.
    trace = Trace.load(result.trace_path)
    scenario = get_scenario("echo")
    probes = {}

    def build(cluster):
        probes.update(scenario.build(cluster))

    world = ReplayWorld(trace, build)
    verify = world.verify()
    assert verify.fingerprint == result.trace_fingerprint
    assert scenario.check(world.cluster, probes) == result.violations
    assert result.repro_command.endswith(str(trace_path := result.trace_path)) \
        and trace_path


def test_shrinker_rejects_passing_cell():
    calm = build_grid(["echo"], [0], [("calm", get_plan("calm"))])[0]
    with pytest.raises(ValueError):
        shrink_cell(calm)


def test_campaign_shrinks_failures(tmp_path):
    cells = build_grid(["echo"], [0],
                       [("calm", get_plan("calm")),
                        ("crash", get_plan("crash"))])
    report = run_campaign(cells, workers=1, shrink=True,
                          out_dir=str(tmp_path))
    assert len(report.shrinks) == 1
    shrink = report.shrinks[0]
    assert shrink["plan_name"] == "crash"
    assert shrink["minimal_windows"] <= 2
    assert (tmp_path / "echo_s0_crash.min.trace.bin").exists()
    assert "repro" in shrink["repro_command"]


def test_manual_cellspec_round_trips_through_shrinker():
    # A hand-built spec (not from a preset) shrinks too: two actions,
    # one irrelevant loss window, one fatal crash.
    plan = (FaultPlan()
            .loss(at=20 * MS, duration=30 * MS, probability=1.0)
            .crash(at=150 * MS, node="server"))
    cell = CellSpec(index=0, scenario="echo", seed=3,
                    plan_name="custom", plan=plan)
    result = shrink_cell(cell)
    assert [a.kind for a in result.minimal_plan.actions] == ["crash"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_scenarios_lists_catalogue(capsys):
    assert campaign_main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "echo" in out and "storm" in out


def test_cli_run_and_repro_round_trip(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    exit_code = campaign_main([
        "run", "--scenario", "echo", "--seeds", "0",
        "--plans", "calm,crash", "--workers", "1",
        "--report", str(report_path), "--traces-dir", str(tmp_path),
    ])
    assert exit_code == 1  # failing cells -> non-zero
    out = capsys.readouterr().out
    assert "2 cells, 1 passed, 1 failed" in out
    assert report_path.exists()

    trace_path = tmp_path / "echo_s0_crash.min.trace.bin"
    assert campaign_main(["repro", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "REPRODUCED" in out


def test_cli_run_all_green_exits_zero(capsys):
    assert campaign_main([
        "run", "--seeds", "0", "--plans", "calm", "--no-shrink",
    ]) == 0
    assert "1 passed, 0 failed" in capsys.readouterr().out


def test_cli_repro_rejects_foreign_trace(tmp_path, capsys):
    from repro.campaign.scenarios import _echo_build
    from repro.replay import record_run

    trace = record_run(_echo_build, ["client", "server"], seed=0,
                       run_until=1 * SEC)
    path = tmp_path / "plain.trace.jsonl"
    trace.save(path)
    assert campaign_main(["repro", str(path)]) == 2
    assert "not a campaign golden trace" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Verdict extraction / prefix replay used by the shrinker
# ----------------------------------------------------------------------

def test_extract_verdict_counts_failures():
    from repro.campaign.scenarios import _echo_build
    from repro.replay import extract_verdict, record_run

    plan = get_plan("crash")
    trace = record_run(_echo_build, ["client", "server"], seed=0, plan=plan,
                       checkpoint_every=250 * MS, run_until=2 * SEC)
    verdict = extract_verdict(trace)
    assert verdict["counts"]["rpc_failed"] > 0
    assert verdict["counts"]["faults_injected"] == 1
    assert verdict["failed_calls"]  # distinct failed call ids
    assert verdict["first_failure"]["type"] == "RpcCallFailed"


def test_replay_prefix_verifies_partial_run():
    from repro.campaign.scenarios import _echo_build
    from repro.replay import record_run, replay_prefix

    trace = record_run(_echo_build, ["client", "server"], seed=0,
                       checkpoint_every=100 * MS, run_until=1 * SEC)
    assert len(trace.checkpoints) >= 2
    report = replay_prefix(trace, _echo_build, 1)
    assert report.events == trace.checkpoints[1].index
    assert report.final_time == trace.checkpoints[1].time
