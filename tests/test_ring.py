"""Unit tests for the Cambridge Ring model."""

from repro.mayflower import Node
from repro.params import Params
from repro.ring import (
    TRACE_DELIVERED,
    TRACE_DROPPED,
    TRACE_NACKED,
    TRACE_NO_HANDLER,
    Ring,
    RingTracer,
)
from repro.sim import MS, World


def make_ring(n_nodes=3, seed=0, **params):
    world = World(seed=seed)
    p = Params(**params)
    ring = Ring(world, p)
    nodes = [Node(i, f"n{i}", world, p) for i in range(n_nodes)]
    for node in nodes:
        ring.attach(node)
    return world, ring, nodes


def test_basic_delivery_latency():
    world, ring, nodes = make_ring()
    arrivals = []
    nodes[1].station.register_port("p", lambda pkt: arrivals.append((world.now, pkt)))
    nodes[0].station.send(1, "p", {"x": 1})
    world.run()
    assert len(arrivals) == 1
    when, pkt = arrivals[0]
    assert when == 3_500  # one Basic Block latency
    assert pkt.payload == {"x": 1}
    assert pkt.src == 0 and pkt.dst == 1


def test_serial_sends_are_spaced():
    """No data-link broadcast: a burst from one station lands at k*3.5ms."""
    world, ring, nodes = make_ring(n_nodes=5)
    arrivals = []
    for i in range(1, 5):
        nodes[i].station.register_port(
            "halt", lambda pkt, i=i: arrivals.append((world.now, i))
        )
    for i in range(1, 5):
        nodes[0].station.send(i, "halt", None)
    world.run()
    times = [t for t, _ in sorted(arrivals)]
    assert times == [3_500, 7_000, 10_500, 14_000]


def test_sends_from_different_stations_not_serialized():
    world, ring, nodes = make_ring()
    arrivals = []
    nodes[2].station.register_port("p", lambda pkt: arrivals.append(world.now))
    nodes[0].station.send(2, "p", None)
    nodes[1].station.send(2, "p", None)
    world.run()
    assert arrivals == [3_500, 3_500]


def test_large_payload_pays_surcharge():
    world, ring, nodes = make_ring()
    arrivals = []
    nodes[1].station.register_port("p", lambda pkt: arrivals.append(world.now))
    nodes[0].station.send(1, "p", b"", size_bytes=64 + 2048)
    world.run()
    assert arrivals == [3_500 + 2 * 500]


def test_send_to_crashed_node_gets_hardware_nack():
    world, ring, nodes = make_ring()
    nodes[1].crash()
    nacks = []
    nodes[0].station.send(1, "p", None, on_nack=lambda pkt: nacks.append(world.now))
    world.run()
    assert len(nacks) == 1
    # NACK is known by end of transmission, before full delivery latency.
    assert nacks[0] <= 3_500


def test_send_to_unknown_station_nacks():
    world, ring, nodes = make_ring()
    nacks = []
    nodes[0].station.send(99, "p", None, on_nack=lambda pkt: nacks.append(1))
    world.run()
    assert nacks == [1]


def test_probabilistic_interface_nack_retransmission():
    """The halt broadcast's negative-acknowledgement scheme: retransmit on
    hardware NACK until the destination interface accepts."""
    world, ring, nodes = make_ring(seed=3)
    ring.interface_nack_probability = 0.5
    delivered = []
    nodes[1].station.register_port("p", lambda pkt: delivered.append(world.now))

    def send_with_retry(pkt=None):
        nodes[0].station.send(1, "p", None, on_nack=lambda _p: send_with_retry())

    send_with_retry()
    world.run()
    assert len(delivered) == 1


def test_silent_drop_filter():
    world, ring, nodes = make_ring()
    delivered = []
    nacks = []
    nodes[1].station.register_port("p", lambda pkt: delivered.append(pkt))
    ring.drop_filters.append(lambda pkt: pkt.kind == "rpc_call")
    nodes[0].station.send(
        1, "p", None, kind="rpc_call", on_nack=lambda pkt: nacks.append(pkt)
    )
    world.run()
    assert delivered == []
    assert nacks == []  # software loss is silent: no hardware NACK


def test_probabilistic_silent_loss():
    world, ring, nodes = make_ring(seed=1, packet_loss_probability=0.5)
    delivered = []
    nodes[1].station.register_port("p", lambda pkt: delivered.append(pkt))
    for _ in range(100):
        nodes[0].station.send(1, "p", None)
    world.run()
    assert 20 < len(delivered) < 80


def test_no_handler_is_silent_drop():
    world, ring, nodes = make_ring()
    tracer = RingTracer(ring)
    nodes[0].station.send(1, "nobody-home", None)
    world.run()
    assert [r.event for r in tracer.records][-1] == TRACE_NO_HANDLER


def test_tracer_records_lifecycle():
    world, ring, nodes = make_ring()
    tracer = RingTracer(ring)
    nodes[1].station.register_port("p", lambda pkt: None)
    pkt = nodes[0].station.send(1, "p", None, kind="rpc_call")
    world.run()
    assert tracer.events_for(pkt.packet_id) == ["sent", TRACE_DELIVERED]
    assert len(tracer.of_kind("rpc_call")) == 2


def test_tracer_records_nack():
    world, ring, nodes = make_ring()
    tracer = RingTracer(ring)
    nodes[2].crash()
    pkt = nodes[0].station.send(2, "p", None)
    world.run()
    assert tracer.events_for(pkt.packet_id) == ["sent", TRACE_NACKED]


def test_crash_in_flight_drops_silently():
    world, ring, nodes = make_ring()
    tracer = RingTracer(ring)
    pkt = nodes[0].station.send(1, "p", None)
    world.run(until=1 * MS)
    nodes[1].crash()
    world.run()
    assert tracer.events_for(pkt.packet_id) == ["sent", TRACE_DROPPED]


def test_counters():
    world, ring, nodes = make_ring()
    nodes[1].station.register_port("p", lambda pkt: None)
    nodes[0].station.send(1, "p", None)
    nodes[0].station.send(1, "nope", None)
    world.run()
    assert ring.total_sent == 2
    assert ring.total_delivered == 1
    assert ring.total_dropped == 1
